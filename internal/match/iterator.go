package match

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// The streaming join engine. A query compiles to a left-deep pipeline of
// pull iterators over ID rows: one unit seed plus one joinIter per
// pattern, in plan order. Rows carry VALUE_IDs, not terms — term text is
// materialized once per distinct ID at projection time — so a join stage
// costs a handful of int64 moves per candidate instead of the map-copy,
// term-fetch work of the materializing engine (legacy.go). The whole
// pipeline runs inside one core.ReadView: one lock acquisition and one
// snapshot for every probe of every stage.

// row is a fixed-width binding over the query's variable table: two
// int64s per variable slot. Slot 2i holds the canonical VALUE_ID
// (CANON_END_NODE_ID semantics — the join key, so "01"^^xsd:int unifies
// with "1"^^xsd:int), slot 2i+1 the VALUE_ID of the first-bound term,
// used for display. 0 means unbound (real VALUE_IDs start at 1068).
type row []int64

// iterator is a pull-based stream of binding rows. A returned row is
// valid only until the next call to next(); consumers that keep it must
// copy it.
type iterator interface {
	next() (row, bool, error)
}

// unitIter emits one all-unbound row: the seed of the pipeline.
type unitIter struct {
	nv   int
	done bool
}

func (u *unitIter) next() (row, bool, error) {
	if u.done {
		return nil, false, nil
	}
	u.done = true
	return make(row, 2*u.nv), true, nil
}

// joinIter is the AND stage of the pipeline. For each input row it
// substitutes already-bound variables into its pattern and either probes
// the unique MSPO index per model (every position resolved — the
// Contains half of the Next/Contains duality) or collects matching link
// IDs through the best index prefix (the Next half), emitting one
// extended row per candidate that unifies. Candidates are buffered as
// bare ID tuples per input row, so early termination downstream abandons
// them without further work.
type joinIter struct {
	ctx  context.Context
	tx   *core.ReadTx
	in   iterator
	sp   *stagePlan
	mids []int64
	// maxBindings > 0 aborts the query with ErrBudget when this stage's
	// output exceeds it (incremental accounting — no materialization).
	maxBindings int

	cur   row // current input row (owned by in)
	out   row // scratch output row, reused across emissions
	cands []core.LinkIDs
	ci    int
	// emits is the number of pending Contains-mode emissions of cur (one
	// per scoped model containing the fully-resolved triple, preserving
	// per-model-union duplicate semantics).
	emits int

	polled int

	// Stage counters, kept unconditionally (outCount drives the
	// MaxBindings budget): input rows pulled, exact-match candidates
	// produced, rows emitted.
	inCount, candCount, outCount int

	// Self-time accounting, only under the traced gate: the stopwatch
	// pauses while pulling from the upstream iterator so each stage's
	// Duration reports its own work, and the untraced path never reads
	// the clock.
	traced bool
	self   time.Duration
	mark   time.Time
}

func newJoinIter(ctx context.Context, tx *core.ReadTx, in iterator, sp *stagePlan, mids []int64, nv, maxBindings int, traced bool) *joinIter {
	return &joinIter{
		ctx: ctx, tx: tx, in: in, sp: sp, mids: mids,
		maxBindings: maxBindings, out: make(row, 2*nv), traced: traced,
	}
}

func (j *joinIter) next() (r row, ok bool, err error) {
	if j.traced {
		j.mark = time.Now()
		defer func() { j.self += time.Since(j.mark) }()
	}
	return j.step()
}

// pull fetches the next input row, pausing this stage's stopwatch while
// the upstream stages run.
func (j *joinIter) pull() (row, bool, error) {
	if j.traced {
		j.self += time.Since(j.mark)
		defer func() { j.mark = time.Now() }()
	}
	return j.in.next()
}

// tick polls the context every cancelEvery candidate/probe steps, so a
// stage that filters heavily (emitting nothing downstream) still honors
// cancellation promptly.
func (j *joinIter) tick() error {
	j.polled++
	if j.polled%cancelEvery == 0 {
		if err := j.ctx.Err(); err != nil {
			return fmt.Errorf("match: %w", err)
		}
	}
	return nil
}

func (j *joinIter) emit(r row) (row, bool, error) {
	j.outCount++
	if j.maxBindings > 0 && j.outCount > j.maxBindings {
		return nil, false, fmt.Errorf("%w: stage %d produced %d intermediate bindings (max %d)",
			ErrBudget, j.sp.pi, j.outCount, j.maxBindings)
	}
	return r, true, nil
}

func (j *joinIter) step() (row, bool, error) {
	for {
		// Drain pending Contains-mode emissions of the input row.
		if j.emits > 0 {
			j.emits--
			return j.emit(j.cur)
		}
		// Drain buffered scan candidates.
		for j.ci < len(j.cands) {
			c := j.cands[j.ci]
			j.ci++
			if err := j.tick(); err != nil {
				return nil, false, err
			}
			if j.bind(c) {
				return j.emit(j.out)
			}
		}
		// Advance to the next input row.
		cur, ok, err := j.pull()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = cur
		j.inCount++

		sp := j.sp
		resolved := (sp.sVar < 0 || cur[2*sp.sVar] != 0) &&
			(sp.pVar < 0 || cur[2*sp.pVar] != 0) &&
			(sp.oVar < 0 || cur[2*sp.oVar] != 0)
		if resolved {
			// Contains mode: one unique-index probe per scoped model.
			for m, mid := range j.mids {
				ids := sp.ids[m]
				if !ids.ok {
					continue
				}
				if err := j.tick(); err != nil {
					return nil, false, err
				}
				sid, pid, canon := j.resolve(ids)
				if j.tx.ContainsLinkLocked(mid, sid, pid, canon) {
					j.candCount++
					j.emits++
				}
			}
			continue
		}
		// Scan mode: collect exact matches through the best index.
		j.cands = j.cands[:0]
		j.ci = 0
		//repro:vet-ignore viewcheck CollectLinksLocked polls the view context internally every cancelEvery rows and its error is returned below; the per-model loop itself is bounded by the request's scope
		for m, mid := range j.mids {
			ids := sp.ids[m]
			if !ids.ok {
				continue
			}
			sid, pid, canon := j.resolve(ids)
			j.cands, err = j.tx.CollectLinksLocked(j.cands, mid, sid, pid, canon)
			if err != nil {
				return nil, false, err
			}
		}
		j.candCount += len(j.cands)
	}
}

// resolve merges the pattern's concrete IDs for one model with the
// variables already bound in the current input row. Bound variables
// substitute their canonical ID in every position: subjects and
// predicates are self-canonical, and object matching is canonical by
// construction (CANON_END_NODE_ID).
func (j *joinIter) resolve(ids patIDs) (sid, pid, canon int64) {
	sp := j.sp
	sid, pid, canon = ids.sid, ids.pid, ids.canon
	if sp.sVar >= 0 {
		sid = j.cur[2*sp.sVar]
	}
	if sp.pVar >= 0 {
		pid = j.cur[2*sp.pVar]
	}
	if sp.oVar >= 0 {
		canon = j.cur[2*sp.oVar]
	}
	return sid, pid, canon
}

// bind fills the scratch output row from the input row plus one
// candidate, reporting false when a variable repeated within the pattern
// disagrees (e.g. (?x p ?x) against <a p b> — comparison is by canonical
// ID, preserving the old engine's canonical unification).
func (j *joinIter) bind(c core.LinkIDs) bool {
	copy(j.out, j.cur)
	sp := j.sp
	if sp.sVar >= 0 && !setSlot(j.out, sp.sVar, c.SID, c.SID) {
		return false
	}
	if sp.pVar >= 0 && !setSlot(j.out, sp.pVar, c.PID, c.PID) {
		return false
	}
	if sp.oVar >= 0 && !setSlot(j.out, sp.oVar, c.CanonID, c.OID) {
		return false
	}
	return true
}

// setSlot binds one variable slot: an already-bound slot must agree on
// the canonical ID (the display ID keeps its first-bound value), an
// unbound slot takes both IDs.
func setSlot(r row, slot int, canon, disp int64) bool {
	if r[2*slot] != 0 {
		return r[2*slot] == canon
	}
	r[2*slot] = canon
	r[2*slot+1] = disp
	return true
}

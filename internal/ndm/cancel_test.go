package ndm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/reldb"
)

// denseNet builds a w-wide, deep layered network so Dijkstra and BFS have
// thousands of steps to cancel in.
func denseNet(t *testing.T, layers, w int) (*LogicalNetwork, int64, int64) {
	t.Helper()
	db := reldb.NewDatabase("CANCEL")
	net, err := CreateLogicalNetwork(db, "n")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([][]int64, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int64, w)
		for i := 0; i < w; i++ {
			id, err := net.AddNode(fmt.Sprintf("n%d_%d", l, i))
			if err != nil {
				t.Fatal(err)
			}
			ids[l][i] = id
		}
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				if _, err := net.AddLink("", ids[l][i], ids[l+1][j], float64(1+(i+j)%5)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return net, ids[0][0], ids[layers-1][w-1]
}

func TestAnalysisCtxCancellation(t *testing.T) {
	net, src, dst := denseNet(t, 8, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ShortestPathCtx(ctx, net, src, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("ShortestPathCtx = %v", err)
	}
	if _, err := WithinCostCtx(ctx, net, src, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("WithinCostCtx = %v", err)
	}
	if _, err := NearestNeighborsCtx(ctx, net, src, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("NearestNeighborsCtx = %v", err)
	}
	if _, err := ReachableCtx(ctx, net, src, -1); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReachableCtx = %v", err)
	}

	// The background-context entry points still work and agree.
	p, err := ShortestPath(net, src, dst)
	if err != nil || len(p.Links) != 7 {
		t.Fatalf("ShortestPath after cancel tests = %+v, %v", p, err)
	}
}

package match

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/rdfterm"
	"repro/internal/trace"
)

// ErrBudget is the sentinel for a query that exceeded its caller-imposed
// resource budget (Options.MaxBindings). The query is aborted rather
// than truncated: a partial join result is not a prefix of the true
// result, so serving it would be silently wrong. Callers select the
// class with errors.Is(err, ErrBudget); the full chain names the budget
// that was blown.
var ErrBudget = errors.New("match: query budget exceeded")

// RulebaseResolver resolves (models, rulebases) to the name of the hidden
// model holding the precomputed inferred triples — the rules index of
// §6.1 ("a rules index pre-computes triples that can be inferred from
// applying the rulebases"). internal/inference.Catalog implements it.
type RulebaseResolver interface {
	ResolveIndex(models, rulebases []string) (string, error)
}

// Engine selects the join execution engine.
type Engine int

const (
	// EngineStreaming (the default) evaluates the join as a pipeline of
	// streaming iterators over ID rows inside one store read view — see
	// iterator.go.
	EngineStreaming Engine = iota
	// EngineMaterialize is the original engine — full term-binding
	// materialization per stage, one store probe per (binding, model) —
	// kept as the differential-testing oracle (legacy.go).
	EngineMaterialize
)

// Planner selects how the patterns are ordered before execution.
type Planner int

const (
	// PlannerCost (the default) orders patterns by estimated selectivity
	// from per-predicate store statistics, falling back to the heuristic
	// when statistics are missing. Only the streaming engine costs plans;
	// under EngineMaterialize this behaves like PlannerHeuristic.
	PlannerCost Planner = iota
	// PlannerHeuristic is the static boundness heuristic (planOrder):
	// more concrete terms first, stable.
	PlannerHeuristic
	// PlannerNaive keeps the query's textual pattern order — the
	// baseline the differential tests compare against.
	PlannerNaive
)

// Options configure a Match call, mirroring the SDO_RDF_MATCH arguments
// (§6.1): models, rulebases, aliases, filter.
type Options struct {
	// Models to query (at least one).
	Models []string
	// Rulebases to apply; requires Resolver and a previously created rules
	// index covering exactly these models and rulebases.
	Rulebases []string
	// Resolver locates the rules index (nil when Rulebases is empty).
	Resolver RulebaseResolver
	// Aliases expand prefixed names in the query (rdf:, rdfs:, xsd:, owl:
	// are always available on top of these).
	Aliases *rdfterm.AliasSet
	// Filter is an optional boolean expression over the query variables.
	Filter string
	// Distinct drops duplicate result rows (the per-model union otherwise
	// repeats a binding found in several models, like the SQL table
	// function does).
	Distinct bool
	// OrderBy sorts results by the named variables (lexical order of the
	// bound terms), applied after Filter and Distinct.
	OrderBy []string
	// Engine selects the execution engine (default EngineStreaming).
	Engine Engine
	// Planner selects the pattern-ordering strategy (default PlannerCost).
	Planner Planner
	// Trace, when non-nil, is filled with the EXPLAIN-style execution
	// record (plan order, per-stage estimated and actual cardinalities,
	// timings).
	Trace *Trace
	// Metrics, when non-nil, records query/stage series and receives
	// slow-query events (see NewMetrics).
	Metrics *Metrics
	// SlowQuery, when positive, is the threshold above which a completed
	// query is counted and logged as slow (requires Metrics for the event
	// to land anywhere).
	SlowQuery time.Duration
	// Limit, when positive, caps the number of result rows. Rows beyond
	// the cap are dropped and ResultSet.Truncated is set. With OrderBy
	// the full result is sorted first, so the cap returns the true top-N;
	// without it the streaming engine stops the whole pipeline at the
	// cap.
	Limit int
	// MaxBindings, when positive, bounds the intermediate binding set a
	// join stage may produce. A query whose join explodes past the bound
	// is aborted with an ErrBudget error instead of exhausting memory —
	// the admission price of serving untrusted queries. The streaming
	// engine accounts incrementally, so the abort fires as the bound is
	// crossed, not after a stage materializes.
	MaxBindings int
}

// ResultSet holds match results: Vars in first-occurrence order, one term
// per variable per row.
type ResultSet struct {
	Vars []string
	Rows [][]rdfterm.Term
	// Truncated reports that Options.Limit dropped rows beyond the cap.
	Truncated bool
}

// Col returns the column index of a variable, or -1.
func (r *ResultSet) Col(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Get returns the binding of variable v in row i.
func (r *ResultSet) Get(i int, v string) (rdfterm.Term, bool) {
	c := r.Col(v)
	if c < 0 || i < 0 || i >= len(r.Rows) {
		return rdfterm.Term{}, false
	}
	return r.Rows[i][c], true
}

// Strings returns row i as lexical strings.
func (r *ResultSet) Strings(i int) []string {
	out := make([]string, len(r.Vars))
	for c, t := range r.Rows[i] {
		out[c] = t.Lexical()
	}
	return out
}

// Len returns the number of rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// Match is SDO_RDF_MATCH (§6.1): it evaluates the conjunctive triple
// patterns of query over the given models (plus the rules index's inferred
// triples when rulebases are requested), applies the filter, and returns
// the variable bindings.
func Match(store *core.Store, query string, opts Options) (*ResultSet, error) {
	//repro:vet-ignore ctxcheck compatibility wrapper for context-free callers (tools, tests); the serving path enters through MatchContext
	return MatchContext(context.Background(), store, query, opts)
}

// cancelEvery is how many rows the engines process between context checks
// (the index scans underneath poll on their own cadence inside core).
const cancelEvery = 256

// MatchContext is Match with cancellation: the engines poll ctx between
// rows and each index scan polls it internally, so a combinatorial join
// aborts promptly — releasing the store's read lock — once the deadline
// passes or the caller cancels.
func MatchContext(ctx context.Context, store *core.Store, query string, opts Options) (*ResultSet, error) {
	if len(opts.Models) == 0 {
		return nil, fmt.Errorf("match: at least one model is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	aliases := rdfterm.Default()
	if opts.Aliases != nil {
		aliases = rdfterm.Default().With()
		for _, p := range opts.Aliases.Prefixes() {
			ns, _ := opts.Aliases.Lookup(p)
			aliases = aliases.With(rdfterm.Alias{Prefix: p, Namespace: ns})
		}
	}
	pats, err := ParseQuery(query, aliases)
	if err != nil {
		return nil, err
	}
	filter, err := ParseFilter(opts.Filter)
	if err != nil {
		return nil, err
	}
	scope := append([]string{}, opts.Models...)
	if len(opts.Rulebases) > 0 {
		if opts.Resolver == nil {
			return nil, fmt.Errorf("match: rulebases given without a resolver (create a rules index first)")
		}
		idxModel, err := opts.Resolver.ResolveIndex(opts.Models, opts.Rulebases)
		if err != nil {
			return nil, err
		}
		scope = append(scope, idxModel)
	}

	// Tracing, metrics, the slow-query log, and the request span share
	// one gate: when none is requested the engines take the untimed path
	// and never call time.Now (the "zero overhead when disabled" budget,
	// DESIGN.md §7). A span in ctx forces the timed path — the request
	// is being traced, so the per-stage wall times must be real.
	sp := trace.FromContext(ctx)
	traced := opts.Trace != nil || opts.Metrics != nil || opts.SlowQuery > 0 || sp != nil
	var tr *Trace
	var queryStart time.Time
	if traced {
		tr = opts.Trace
		if tr == nil {
			tr = &Trace{}
		}
		tr.Query = query
		tr.PlanOrder = tr.PlanOrder[:0]
		tr.Stages = tr.Stages[:0]
		tr.Planner = ""
		tr.TraceID = sp.TraceID()
		queryStart = time.Now()
	}

	vars := collectVars(pats)
	var rs *ResultSet
	if opts.Engine == EngineMaterialize {
		rs, err = runMaterialize(ctx, store, scope, pats, vars, filter, opts, traced, tr)
	} else {
		rs, err = runStreaming(ctx, store, scope, pats, vars, filter, opts, traced, tr)
	}
	if err != nil {
		if sp != nil {
			sp.AddCompleted("match.query", queryStart, time.Since(queryStart),
				map[string]string{"query": query, "error": err.Error()}, true)
		}
		return nil, err
	}
	if traced {
		tr.Rows = rs.Len()
		tr.Total = time.Since(queryStart)
		tr.attachSpan(sp, queryStart)
		opts.Metrics.onQuery(tr)
		if opts.SlowQuery > 0 && tr.Total >= opts.SlowQuery {
			opts.Metrics.onSlowQuery(tr)
		}
	}
	return rs, nil
}

// collectVars returns the query's variables in first-occurrence (textual)
// order — the projection order of the result set and the slot order of
// the streaming engine's rows.
func collectVars(pats []TriplePattern) []string {
	var vars []string
	seen := map[string]bool{}
	for _, pat := range pats {
		for _, v := range pat.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	return vars
}

// sortBy orders rows by the named variables.
func (r *ResultSet) sortBy(vars []string) error {
	cols := make([]int, len(vars))
	for i, v := range vars {
		c := r.Col(v)
		if c < 0 {
			return fmt.Errorf("match: ORDER BY unknown variable ?%s", v)
		}
		cols[i] = c
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for _, c := range cols {
			if cmp := r.Rows[a][c].Compare(r.Rows[b][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

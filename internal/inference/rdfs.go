package inference

import "repro/internal/rdfterm"

// rdfsRules builds the Oracle-supplied RDFS rulebase (§6.1), implementing
// the RDFS entailment rules of the W3C RDF Semantics recommendation [25].
// Rule names follow the recommendation's numbering. Axiomatic triples and
// the literal-generalization rules (lg/gl) are omitted: they add
// unbounded bookkeeping without affecting any query the paper (or a
// typical application) issues; every rule that derives new relationships
// between user terms is present.
func rdfsRules() []Rule {
	r := func(name, ante, cons string) Rule {
		return Rule{Name: name, Antecedent: ante, Consequent: cons}
	}
	return []Rule{
		// rdf1: any predicate is an rdf:Property.
		r("rdf1", "(?x ?p ?y)", "(?p rdf:type rdf:Property)"),
		// rdfs2: domain typing.
		r("rdfs2", "(?p rdfs:domain ?c) (?x ?p ?y)", "(?x rdf:type ?c)"),
		// rdfs3: range typing.
		r("rdfs3", "(?p rdfs:range ?c) (?x ?p ?y)", "(?y rdf:type ?c)"),
		// rdfs5: subPropertyOf transitivity.
		r("rdfs5", "(?p rdfs:subPropertyOf ?q) (?q rdfs:subPropertyOf ?r)", "(?p rdfs:subPropertyOf ?r)"),
		// rdfs6: every property is a subproperty of itself.
		r("rdfs6", "(?p rdf:type rdf:Property)", "(?p rdfs:subPropertyOf ?p)"),
		// rdfs7: subproperty propagation.
		r("rdfs7", "(?p rdfs:subPropertyOf ?q) (?x ?p ?y)", "(?x ?q ?y)"),
		// rdfs8: classes are subclasses of rdfs:Resource.
		r("rdfs8", "(?c rdf:type rdfs:Class)", "(?c rdfs:subClassOf rdfs:Resource)"),
		// rdfs9: subclass instance propagation.
		r("rdfs9", "(?c rdfs:subClassOf ?d) (?x rdf:type ?c)", "(?x rdf:type ?d)"),
		// rdfs10: every class is a subclass of itself.
		r("rdfs10", "(?c rdf:type rdfs:Class)", "(?c rdfs:subClassOf ?c)"),
		// rdfs11: subClassOf transitivity.
		r("rdfs11", "(?c rdfs:subClassOf ?d) (?d rdfs:subClassOf ?e)", "(?c rdfs:subClassOf ?e)"),
		// rdfs12: container membership properties are subproperties of
		// rdfs:member.
		r("rdfs12", "(?p rdf:type rdfs:ContainerMembershipProperty)", "(?p rdfs:subPropertyOf rdfs:member)"),
		// rdfs13: datatypes are subclasses of rdfs:Literal.
		r("rdfs13", "(?d rdf:type rdfs:Datatype)", "(?d rdfs:subClassOf rdfs:Literal)"),
	}
}

// RDFS vocabulary re-exported for callers building typed data.
var (
	// TypeURI is rdf:type.
	TypeURI = rdfterm.RDFType
	// SubClassOfURI is rdfs:subClassOf.
	SubClassOfURI = rdfterm.RDFSSubClassOf
	// SubPropertyOfURI is rdfs:subPropertyOf.
	SubPropertyOfURI = rdfterm.RDFSSubPropertyOf
)

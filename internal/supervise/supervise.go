// Package supervise wraps a core.Store in a health-state machine so a
// deployment survives its durability layer misbehaving. The paper's
// store inherits Oracle's operational posture — the database stays up
// and queryable even when parts of it fail — and this package reproduces
// that posture for the reimplementation:
//
//	Healthy ──fault──▶ Degraded ──retry──▶ Recovering ──ok──▶ Healthy
//	                      ▲                    │
//	                      └────attempt failed──┘ (capped backoff + jitter)
//	                                           │
//	                                           └──attempts exhausted──▶ Failed (terminal)
//
// A WAL append/sync error or a failed checkpoint moves the store to
// Degraded: mutations are rejected with ErrDegraded while reads keep
// serving from the in-memory image (which is ahead of the broken log and
// authoritative). A background recovery loop retries with exponential
// backoff — reopen the WAL, checkpoint the current memory image
// atomically, truncate the log — until the sink heals or the attempt
// budget runs out (Failed, terminal; reads still served).
//
// A background scrubber periodically sweeps the store's invariants and
// per-model statistics in bounded slices (core.ScrubPass), escalating
// genuine violations to Degraded with a structured ScrubError; recovery
// for corruption re-verifies and, if the damage is real, rebuilds the
// store from the on-disk snapshot + WAL.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// State is a supervisor health state.
type State int32

const (
	// Healthy serves reads and writes.
	Healthy State = iota
	// Degraded serves reads only; mutations fail with ErrDegraded while
	// the recovery loop works in the background.
	Degraded
	// Recovering is Degraded with a recovery attempt actively running.
	Recovering
	// Failed is terminal: the attempt budget is exhausted. Reads still
	// serve; mutations fail with ErrFailed until the process restarts.
	Failed
	// DegradedDisk is Degraded caused by disk pressure: the WAL's byte
	// budget is exhausted or the filesystem returned ENOSPC/short-write.
	// Mutations fail with ErrDiskFull (which also matches ErrDegraded);
	// reads keep serving. Unlike other faults it never escalates to
	// Failed — the recovery loop retries indefinitely, so freeing space
	// (an automatic checkpoint, an operator deleting files) brings the
	// store back to Healthy without a restart.
	DegradedDisk
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "Healthy"
	case Degraded:
		return "Degraded"
	case Recovering:
		return "Recovering"
	case Failed:
		return "Failed"
	case DegradedDisk:
		return "Degraded(disk)"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Sentinel errors for the mutation gate. Both wrap the underlying cause,
// so errors.Is(err, ErrDegraded) selects the gate and the full chain
// explains the fault.
var (
	ErrDegraded = errors.New("supervise: store degraded (read-only)")
	ErrFailed   = errors.New("supervise: store failed (recovery exhausted)")
	ErrClosed   = errors.New("supervise: supervisor closed")
)

// ErrDiskFull is the DegradedDisk gate's sentinel. It wraps ErrDegraded,
// so callers that only know the generic read-only state keep working,
// while disk-aware layers (the HTTP server's 507 mapping) match it
// first. A raw ENOSPC never reaches a client: the gate rejects with
// this sentinel before the store is touched.
var ErrDiskFull = fmt.Errorf("%w: disk pressure", ErrDegraded)

// Backoff shapes the recovery retry schedule.
type Backoff struct {
	// Initial is the delay before the second attempt (default 50ms; the
	// first attempt runs immediately).
	Initial time.Duration
	// Max caps the delay between attempts (default 5s).
	Max time.Duration
	// Multiplier grows the delay each failed attempt (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2) so
	// a fleet of stores does not retry in lockstep.
	Jitter float64
	// MaxAttempts bounds recovery attempts per fault; 0 retries forever.
	// Exhausting the budget moves the supervisor to Failed.
	MaxAttempts int
}

// Transition describes one state change, for observability hooks.
type Transition struct {
	From, To State
	// Reason is the fault driving the transition (nil for →Healthy).
	Reason error
	// RootCause is the fault that started the current Degraded episode —
	// stable across retry attempts, unlike Reason, which is rewritten
	// with each failed attempt's error. On the →Healthy transition it is
	// the fault that was just recovered from.
	RootCause error
	// Attempt numbers the recovery attempt (0 outside recovery).
	Attempt int
}

// CheckpointPolicy drives the supervisor's automatic checkpoints — the
// retention mechanism that keeps a segmented WAL's disk footprint
// bounded without operator involvement. The zero value disables the
// policy loop (manual Checkpoint still works); the soft disk watermark
// (Config.Segment.Budget.SoftBytes) additionally triggers an immediate
// checkpoint regardless of these thresholds.
type CheckpointPolicy struct {
	// Interval checkpoints whenever at least this much time has passed
	// since the last checkpoint and mutations have landed since. 0
	// disables the age trigger.
	Interval time.Duration
	// WALBytes checkpoints whenever the WAL's on-disk size reaches this
	// many bytes. 0 disables the size trigger.
	WALBytes int64
	// Poll is how often the policy is evaluated (default 1s).
	Poll time.Duration
}

// Config configures Open.
type Config struct {
	// SnapshotPath and WALPath locate the durable state. Checkpoints are
	// written atomically (core.SaveFile): tmp + fsync + rename.
	SnapshotPath string
	WALPath      string
	// WALDir selects the segmented WAL instead of the single file: a
	// directory of rotating segment files with checkpoint-driven
	// retention and an optional disk budget (see wal.Dir). Mutually
	// exclusive with WALPath.
	WALDir string
	// Segment configures the segmented WAL (rotation size, disk budget,
	// fault-injection wrap). The supervisor chains its own checkpoint
	// trigger onto Segment.OnSoft. Ignored without WALDir.
	Segment wal.DirOptions
	// Checkpoint shapes the automatic checkpoint policy (zero disables).
	// Requires SnapshotPath.
	Checkpoint CheckpointPolicy
	// OpenWAL opens/creates the WAL (default wal.OpenFile). Tests inject
	// fault-wrapped files via wal.OpenFileWith here.
	OpenWAL func(path string) (*wal.Log, wal.ScanResult, error)
	// OpenDir opens/creates the segmented WAL (default wal.OpenDir).
	OpenDir func(dir string, fromSeq int64, opts wal.DirOptions) (*wal.Dir, wal.DirScanResult, error)
	// OnRecover, when set, observes the startup recovery's outcome —
	// CLIs surface torn-tail repairs to stderr from here.
	OnRecover func(core.RecoverInfo)
	// ScrubInterval is the pause between background invariant sweeps;
	// 0 disables the scrubber.
	ScrubInterval time.Duration
	// ScrubSlice bounds how many links one scrub slice audits under the
	// read lock (0 = core's default).
	ScrubSlice int
	// QueryTimeout bounds each read served through the supervisor's
	// query methods (0 = unbounded).
	QueryTimeout time.Duration
	// Backoff shapes recovery retries; zero fields take defaults.
	Backoff Backoff
	// OnTransition, when set, observes every state change (called outside
	// the supervisor's locks, from supervisor goroutines).
	OnTransition func(Transition)
	// Scrub overrides the background sweep (default core.Store.ScrubPass).
	// Tests inject fabricated violation reports here.
	Scrub func(ctx context.Context, st *core.Store, slice int) (core.ScrubReport, error)
	// Verify overrides the invariant check recovery re-verifies a
	// suspect store with (default core.Store.CheckInvariants).
	Verify func(st *core.Store) []error
	// Seed seeds the backoff jitter. 0 (the default) seeds from the
	// clock so a fleet of stores does not retry in lockstep; tests that
	// need a deterministic schedule set it explicitly.
	Seed int64
	// Obs, when set, receives the supervisor's metric series and routes
	// every transition and scrub notification into the registry's event
	// log with structured fields (see NewMetrics).
	Obs *obs.Registry
	// Tracer, when set, records background root spans for recovery
	// attempts, scrub passes, and automatic checkpoints (see
	// internal/trace). Recovery spans are force-retained — a recovery is
	// rare enough that losing one to sampling would be a debugging hole.
	// Nil disables with zero overhead.
	Tracer *trace.Tracer
}

// Supervisor wraps a store with the health-state machine. Reads go to
// Store() or the query helpers in any state; mutations must go through
// Mutate so the gate and the fault detector see them.
type Supervisor struct {
	cfg Config

	// opMu serializes mutations against recovery and checkpointing:
	// mutations hold it shared for the duration of the store call, the
	// recovery loop and Checkpoint hold it exclusively, so the WAL is
	// never swapped or truncated under an in-flight mutation. It guards
	// an execution window, not data — the data guard is mu below.
	opMu sync.RWMutex

	mu         sync.Mutex
	state      State            //repro:guarded-by mu
	reason     error            //repro:guarded-by mu
	rootCause  error            //repro:guarded-by mu
	store      *core.Store      //repro:guarded-by mu
	log        *wal.Log         //repro:guarded-by mu
	dir        *wal.Dir         //repro:guarded-by mu
	closed     bool             //repro:guarded-by mu
	recoveries int              //repro:guarded-by mu
	scrubs     int              //repro:guarded-by mu
	lastScrub  core.ScrubReport //repro:guarded-by mu
	dirty      int64            //repro:guarded-by mu
	lastCkpt   time.Time        //repro:guarded-by mu

	wake      chan struct{}
	ckptWake  chan struct{} // soft-watermark → immediate checkpoint
	stop      chan struct{}
	wg        sync.WaitGroup
	scrubCtx  context.Context
	scrubStop context.CancelFunc
	rng       *rand.Rand // recovery-loop goroutine only

	// met and walMet are set once in Open (attach-before-share) and read
	// by the notification funnel; nil when Config.Obs is unset.
	met    *Metrics
	walMet *wal.Metrics
}

// Open recovers the store from SnapshotPath + WALPath or WALDir (the
// snapshot may be absent — a fresh baseline is created), attaches the
// WAL, and starts the supervisor's background loops.
func Open(cfg Config) (*Supervisor, error) {
	if cfg.WALPath != "" && cfg.WALDir != "" {
		return nil, errors.New("supervise: open: WALPath and WALDir are mutually exclusive")
	}
	if cfg.WALPath == "" && cfg.WALDir == "" {
		return nil, errors.New("supervise: open: one of WALPath or WALDir is required")
	}
	if cfg.OpenWAL == nil {
		cfg.OpenWAL = wal.OpenFile
	}
	if cfg.OpenDir == nil {
		cfg.OpenDir = wal.OpenDir
	}
	if cfg.Backoff.Initial <= 0 {
		cfg.Backoff.Initial = 50 * time.Millisecond
	}
	if cfg.Backoff.Max <= 0 {
		cfg.Backoff.Max = 5 * time.Second
	}
	if cfg.Backoff.Multiplier < 1 {
		cfg.Backoff.Multiplier = 2
	}
	if cfg.Backoff.Jitter < 0 || cfg.Backoff.Jitter >= 1 {
		cfg.Backoff.Jitter = 0.2
	}
	if cfg.Scrub == nil {
		cfg.Scrub = func(ctx context.Context, st *core.Store, slice int) (core.ScrubReport, error) {
			return st.ScrubPass(ctx, slice)
		}
	}
	if cfg.Verify == nil {
		cfg.Verify = func(st *core.Store) []error { return st.CheckInvariants() }
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sv := &Supervisor{
		cfg:       cfg,
		state:     Healthy,
		wake:      make(chan struct{}, 1),
		ckptWake:  make(chan struct{}, 1),
		stop:      make(chan struct{}),
		scrubCtx:  ctx,
		scrubStop: cancel,
		rng:       rand.New(rand.NewSource(seed)),
		met:       NewMetrics(cfg.Obs),
		walMet:    wal.NewMetrics(cfg.Obs),
		lastCkpt:  time.Now(),
	}
	// Chain the supervisor's immediate-checkpoint trigger onto the
	// segmented WAL's soft watermark (preserving any user callback). The
	// chained callback only pokes a buffered channel, so it is safe to
	// fire from inside an Append.
	if cfg.WALDir != "" {
		userSoft := cfg.Segment.OnSoft
		sv.cfg.Segment.OnSoft = func(total int64) {
			if userSoft != nil {
				userSoft(total)
			}
			select {
			case sv.ckptWake <- struct{}{}:
			default:
			}
		}
	}

	var info core.RecoverInfo
	if cfg.WALDir != "" {
		st, dir, inf, err := core.RecoverDirWith(cfg.SnapshotPath, cfg.WALDir, sv.cfg.Segment, cfg.OpenDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("supervise: open: %w", err)
		}
		dir.SetMetrics(sv.walMet)
		st.SetDurability(dir)
		sv.store, sv.dir, info = st, dir, inf
	} else {
		st, log, inf, err := core.RecoverFilesWith(cfg.SnapshotPath, cfg.WALPath, cfg.OpenWAL)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("supervise: open: %w", err)
		}
		log.SetMetrics(sv.walMet)
		st.SetDurability(log)
		sv.store, sv.log, info = st, log, inf
	}
	if info.Truncated {
		sv.walMet.OnTornTail(sv.walSource(), info.ValidBytes, info.TailErr)
	}
	if cfg.OnRecover != nil {
		cfg.OnRecover(info)
	}
	sv.met.markHealthy()
	sv.wg.Add(1)
	go sv.recoverLoop()
	if cfg.ScrubInterval > 0 {
		sv.wg.Add(1)
		go sv.scrubLoop()
	}
	if sv.checkpointLoopEnabled() {
		sv.wg.Add(1)
		go sv.checkpointLoop()
	}
	return sv, nil
}

// walSource names the WAL for diagnostics: the directory in segmented
// mode, the file otherwise.
func (sv *Supervisor) walSource() string {
	if sv.cfg.WALDir != "" {
		return sv.cfg.WALDir
	}
	return sv.cfg.WALPath
}

// checkpointLoopEnabled reports whether the automatic checkpoint loop
// has anything to do: a policy trigger or a soft disk watermark, plus a
// snapshot path to checkpoint into.
func (sv *Supervisor) checkpointLoopEnabled() bool {
	if sv.cfg.SnapshotPath == "" {
		return false
	}
	p := sv.cfg.Checkpoint
	return p.Interval > 0 || p.WALBytes > 0 ||
		(sv.cfg.WALDir != "" && sv.cfg.Segment.Budget.SoftBytes > 0)
}

// State returns the current health state.
func (sv *Supervisor) State() State {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.state
}

// Err returns the fault behind the current non-Healthy state (nil when
// Healthy).
func (sv *Supervisor) Err() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.reason
}

// Health is a snapshot of the supervisor's condition.
type Health struct {
	State State
	// Reason is the active fault (nil when Healthy).
	Reason error
	// Recoveries counts completed Degraded→Healthy cycles.
	Recoveries int
	// Scrubs counts completed background sweeps; LastScrub is the most
	// recent report.
	Scrubs    int
	LastScrub core.ScrubReport
}

// Health returns a snapshot of the supervisor's condition.
func (sv *Supervisor) Health() Health {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return Health{
		State:      sv.state,
		Reason:     sv.reason,
		Recoveries: sv.recoveries,
		Scrubs:     sv.scrubs,
		LastScrub:  sv.lastScrub,
	}
}

// Store returns the current store for direct reads. The pointer may be
// replaced by corruption recovery; long-lived readers should re-fetch it
// rather than cache it. Mutating through this pointer bypasses the
// health gate and the fault detector — use Mutate.
func (sv *Supervisor) Store() *core.Store {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.store
}

// gate admits one mutation: the supervisor must be open and Healthy.
// The returned error wraps the active fault under the matching sentinel.
func (sv *Supervisor) gate() (*core.Store, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	switch {
	case sv.closed:
		return nil, ErrClosed
	case sv.state == Failed:
		return nil, fmt.Errorf("%w: %w", ErrFailed, sv.reason)
	case sv.state == DegradedDisk:
		if sv.reason != nil {
			return nil, fmt.Errorf("%w: %w", ErrDiskFull, sv.reason)
		}
		return nil, ErrDiskFull
	case sv.state != Healthy:
		if sv.reason != nil {
			return nil, fmt.Errorf("%w: %w", ErrDegraded, sv.reason)
		}
		return nil, ErrDegraded
	}
	return sv.store, nil
}

// Mutate runs one mutation against the store. In any state but Healthy
// the mutation is rejected (ErrDegraded/ErrFailed/ErrClosed) without
// touching the store. A mutation that fails against the durability sink
// (core.ErrDurability in the chain) trips the supervisor to Degraded —
// the caller's error reports the rejected operation; the recovery loop
// handles the sink.
func (sv *Supervisor) Mutate(fn func(*core.Store) error) error {
	sv.opMu.RLock()
	defer sv.opMu.RUnlock()
	st, err := sv.gate()
	if err != nil {
		return err
	}
	if err := fn(st); err != nil {
		if errors.Is(err, core.ErrDurability) {
			sv.degrade(err)
		}
		return err
	}
	sv.noteMutation()
	return nil
}

// noteMutation counts a successful mutation for the checkpoint policy's
// "anything new since the last checkpoint?" test.
func (sv *Supervisor) noteMutation() {
	sv.mu.Lock()
	sv.dirty++
	sv.mu.Unlock()
}

// InsertBatch is Mutate(core.InsertBatch) with the result threaded out.
func (sv *Supervisor) InsertBatch(model string, batch []core.BatchTriple) (core.BatchResult, error) {
	var res core.BatchResult
	err := sv.Mutate(func(st *core.Store) error {
		var err error
		res, err = st.InsertBatch(model, batch)
		return err
	})
	return res, err
}

// readCtx applies the configured query timeout.
func (sv *Supervisor) readCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if sv.cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, sv.cfg.QueryTimeout)
	}
	return ctx, func() {}
}

// Find serves a pattern query in any health state (Degraded and Failed
// stores keep reading), bounded by the configured query timeout.
func (sv *Supervisor) Find(ctx context.Context, model string, pat core.Pattern) ([]core.TripleS, error) {
	ctx, cancel := sv.readCtx(ctx)
	defer cancel()
	return sv.Store().FindCtx(ctx, model, pat)
}

// FindModels is Find over several models under one consistent snapshot.
func (sv *Supervisor) FindModels(ctx context.Context, models []string, pat core.Pattern) ([]core.TripleS, error) {
	ctx, cancel := sv.readCtx(ctx)
	defer cancel()
	return sv.Store().FindModelsCtx(ctx, models, pat)
}

// Checkpoint snapshots the current state atomically and reclaims WAL
// space (truncation for a single file, rotate + watermark + segment
// retention for a directory), excluding mutations for the duration. A
// failed checkpoint trips the supervisor to Degraded — or to
// DegradedDisk when the failure is disk exhaustion — while the previous
// snapshot stays intact (SaveFile never overwrites in place).
func (sv *Supervisor) Checkpoint() error {
	return sv.CheckpointCtx(context.Background())
}

// CheckpointCtx is Checkpoint recording its phases on the span carried
// by ctx (see internal/trace) — the automatic checkpoint loop passes a
// "supervise.checkpoint" root span through here.
func (sv *Supervisor) CheckpointCtx(ctx context.Context) error {
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	st, err := sv.gate()
	if err != nil {
		return err
	}
	sv.mu.Lock()
	log, dir := sv.log, sv.dir
	sv.mu.Unlock()
	if dir != nil {
		err = core.CheckpointDirCtx(ctx, st, sv.cfg.SnapshotPath, dir)
	} else {
		err = core.CheckpointCtx(ctx, st, sv.cfg.SnapshotPath, log)
	}
	if err != nil {
		err = fmt.Errorf("supervise: checkpoint: %w", err)
		sv.degrade(err)
		return err
	}
	sv.noteCheckpoint()
	return nil
}

// noteCheckpoint resets the checkpoint policy's triggers.
func (sv *Supervisor) noteCheckpoint() {
	sv.mu.Lock()
	sv.dirty = 0
	sv.lastCkpt = time.Now()
	sv.mu.Unlock()
}

// Close stops the background loops and closes the WAL. Safe to call
// twice; mutations after Close fail with ErrClosed.
func (sv *Supervisor) Close() error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil
	}
	sv.closed = true
	sv.mu.Unlock()
	sv.scrubStop()
	close(sv.stop)
	sv.wg.Wait()
	// Exclude in-flight operations: a Mutate/Checkpoint that passed the
	// gate before closed was set may still be appending; closing the log
	// under it would turn a durable write into a spurious write-on-closed
	// error. The background loops are already drained (wg.Wait above), so
	// nothing else can hold opMu for long.
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	sv.mu.Lock()
	log, dir := sv.log, sv.dir
	sv.log, sv.dir = nil, nil
	sv.mu.Unlock()
	if log != nil {
		if err := log.Close(); err != nil {
			return fmt.Errorf("supervise: close: %w", err)
		}
	}
	if dir != nil {
		if err := dir.Close(); err != nil {
			return fmt.Errorf("supervise: close: %w", err)
		}
	}
	return nil
}

// degrade records a fault and wakes the recovery loop. No-op unless the
// supervisor is currently Healthy: an already-degraded store keeps its
// first fault as the root cause, and Failed is terminal. Disk-space
// faults (wal.IsNoSpace anywhere in the chain) land in DegradedDisk,
// whose recovery never gives up.
func (sv *Supervisor) degrade(cause error) {
	to := Degraded
	if wal.IsNoSpace(cause) {
		to = DegradedDisk
	}
	sv.mu.Lock()
	if sv.closed || sv.state != Healthy {
		sv.mu.Unlock()
		return
	}
	sv.state = to
	sv.reason = cause
	// rootCause is the fault that started this Degraded episode. Unlike
	// reason it is never overwritten by per-attempt retry errors, so the
	// recovery loop's fault classification (corruption vs durability vs
	// disk) stays stable across failed attempts.
	sv.rootCause = cause
	sv.mu.Unlock()
	sv.notify(Transition{From: Healthy, To: to, Reason: cause, RootCause: cause})
	select {
	case sv.wake <- struct{}{}:
	default:
	}
}

// transition moves the state machine during recovery. Failed is terminal
// and the machine freezes once closed.
func (sv *Supervisor) transition(to State, reason error, attempt int) {
	sv.mu.Lock()
	if sv.closed || sv.state == Failed || sv.state == to {
		sv.mu.Unlock()
		return
	}
	from := sv.state
	sv.state = to
	if reason != nil {
		sv.reason = reason
	}
	// Capture before the →Healthy clear so the recovery transition still
	// names the fault it recovered from.
	rootCause := sv.rootCause
	if to == Healthy {
		sv.reason = nil
		sv.rootCause = nil
		sv.recoveries++
	}
	sv.mu.Unlock()
	sv.notify(Transition{From: from, To: to, Reason: reason, RootCause: rootCause, Attempt: attempt})
}

// notify delivers a transition to every observability sink: the obs
// registry (state gauge, transition counters, structured event) and the
// configured callback.
func (sv *Supervisor) notify(tr Transition) {
	sv.met.onTransition(tr)
	if sv.cfg.OnTransition != nil {
		sv.cfg.OnTransition(tr)
	}
}

// stopped reports whether Close has begun.
func (sv *Supervisor) stopped() bool {
	select {
	case <-sv.stop:
		return true
	default:
		return false
	}
}

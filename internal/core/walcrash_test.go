package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdfterm"
	"repro/internal/wal"
)

// Crash-point matrix: a fixed workload is recorded once through a clean
// WAL (the golden run, with the store fingerprinted at every commit
// point), then re-run with a fault injected at every byte offset of the
// log image, in every fault mode. Whatever file image survives the fault
// is recovered, and the result must be a consistent store holding a
// prefix of the golden history — and, whenever the surviving prefix ends
// exactly on a commit boundary, must equal the golden store as of that
// commit, byte for byte.

// walOp is one step of the crash workload. Each op is a single public
// mutation (one commit point); ops may look up state left by earlier ops
// but must be deterministic.
type walOp struct {
	name string
	do   func(s *Store) error
}

// walWorkload exercises every record type: model DDL, URI/plain/typed/
// language-tagged/long literals, blank nodes (named and generated),
// repeated inserts (cost bump), reification and assertions, containers,
// cost-decrement and full deletes, and model drop with shared values.
func walWorkload() []walOp {
	a := govAliases()
	long := strings.Repeat("L", rdfterm.LongLiteralThreshold+7)
	ins := func(model, sub, prop, obj string) walOp {
		return walOp{
			name: fmt.Sprintf("insert %s %s %s %s", model, sub, prop, obj[:min(len(obj), 12)]),
			do: func(s *Store) error {
				_, err := s.NewTripleS(model, sub, prop, obj, a)
				return err
			},
		}
	}
	del := func(model, sub, prop, obj string) walOp {
		return walOp{
			name: fmt.Sprintf("delete %s %s %s %s", model, sub, prop, obj),
			do: func(s *Store) error {
				return s.DeleteTriple(model, sub, prop, obj, a)
			},
		}
	}
	lookupTID := func(s *Store) (int64, error) {
		ts, ok, err := s.IsTriple("gov", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, errors.New("base triple missing")
		}
		return ts.TID, nil
	}
	return []walOp{
		{"create gov", func(s *Store) error {
			_, err := s.CreateRDFModel("gov", "govdata", "triple")
			return err
		}},
		{"create cia", func(s *Store) error {
			_, err := s.CreateRDFModel("cia", "", "")
			return err
		}},
		ins("gov", "gov:files", "gov:terrorSuspect", "id:JohnDoe"),
		ins("gov", "gov:files", "gov:terrorSuspect", "id:JohnDoe"), // repeat: cost bump
		ins("gov", "gov:files", "gov:caseCount", `"01"^^xsd:int`),  // canonical form differs
		ins("gov", "id:JohnDoe", "gov:alias", `"Jean Dupont"@fr`),
		ins("gov", "_:b1", "gov:knows", "id:JohnDoe"),
		ins("gov", "_:b1", "gov:age", `"44"^^xsd:int`), // blank reuse within model
		ins("gov", "gov:files", "gov:dossier", `"`+long+`"`),
		ins("cia", "gov:files", "gov:sharedWith", "id:MI5"), // values shared across models
		{"new blank node", func(s *Store) error {
			_, err := s.NewBlankNode("cia")
			return err
		}},
		{"reify base", func(s *Store) error {
			tid, err := lookupTID(s)
			if err != nil {
				return err
			}
			_, err = s.Reify("gov", tid)
			return err
		}},
		{"assert about", func(s *Store) error {
			tid, err := lookupTID(s)
			if err != nil {
				return err
			}
			_, err = s.AssertAboutTriple("gov", "gov:MI5", "gov:source", tid, a)
			return err
		}},
		{"assert implied", func(s *Store) error {
			_, err := s.AssertImplied("gov", "gov:Interpol", "gov:said", "gov:x", "gov:y", "gov:z", a)
			return err
		}},
		{"container", func(s *Store) error {
			_, err := s.CreateContainer("gov", BagContainer,
				rdfterm.NewURI("http://m/1"), rdfterm.NewLiteral("two"))
			return err
		}},
		ins("cia", "gov:tmp", "gov:p", "gov:q"),
		ins("cia", "gov:tmp", "gov:p", "gov:q"), // cost 2
		del("cia", "gov:tmp", "gov:p", "gov:q"), // cost decrement
		del("cia", "gov:tmp", "gov:p", "gov:q"), // full delete, orphan cleanup
		{"drop cia", func(s *Store) error { return s.DropRDFModel("cia") }},
		ins("gov", "gov:after", "gov:p", "gov:q"), // store usable after drop
	}
}

// fingerprint serializes the store's full logical content (all tables,
// sequence positions) deterministically: two stores with the same
// mutation history produce identical bytes.
func fingerprint(t *testing.T, s *Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// goldenRun records the workload through a fault-free WAL. It returns
// the complete log image, the decoded record stream, and a map from
// record-count-at-commit-boundary to the live store's fingerprint there.
func goldenRun(t *testing.T, ops []walOp) (img []byte, records []wal.Record, commits map[int][]byte) {
	t.Helper()
	f := &wal.BufferFile{}
	log, err := wal.NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	type point struct {
		bytes int64
		img   []byte
	}
	var points []point
	for _, op := range ops {
		if err := op.do(s); err != nil {
			t.Fatalf("golden run, op %q: %v", op.name, err)
		}
		points = append(points, point{int64(f.Len()), fingerprint(t, s)})
	}
	assertInvariants(t, s)
	img = append([]byte(nil), f.Bytes()...)
	res, err := wal.ScanBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("golden image reports truncation: %v", res.TailErr)
	}
	// Map each commit boundary to its record count by scanning prefixes.
	commits = make(map[int][]byte, len(points))
	for i, p := range points {
		pres, err := wal.ScanBytes(img[:p.bytes])
		if err != nil || pres.Truncated {
			t.Fatalf("golden prefix at op %d does not scan clean: %v / %v", i, err, pres.TailErr)
		}
		if int64(len(img[:p.bytes])) != pres.ValidBytes {
			t.Fatalf("op %d commit boundary %d is not a frame boundary", i, p.bytes)
		}
		commits[len(pres.Records)] = p.img
	}
	return img, res.Records, commits
}

// recordsArePrefix reports whether got equals full[:len(got)].
func recordsArePrefix(got, full []wal.Record) bool {
	if len(got) > len(full) {
		return false
	}
	for i := range got {
		if got[i] != full[i] {
			return false
		}
	}
	return true
}

// frameBoundaries lists every byte offset at which a frame (or the
// header) starts or ends in a WAL image.
func frameBoundaries(img []byte) []int {
	bounds := []int{0}
	if len(img) < len(wal.Magic) {
		return bounds
	}
	off := len(wal.Magic)
	bounds = append(bounds, off)
	for off+8 <= len(img) {
		l := int(binary.LittleEndian.Uint32(img[off : off+4]))
		off += 8 + l
		if off > len(img) {
			break
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestWALCrashMatrix is the acceptance test for the durability subsystem:
// for every injected failure point, recovery must succeed, invariants
// must hold, the surviving records must be a prefix of the golden
// history, and a prefix ending on a commit boundary must reproduce the
// golden store exactly.
func TestWALCrashMatrix(t *testing.T) {
	ops := walWorkload()
	img, golden, commits := goldenRun(t, ops)

	// Offsets per mode. FailStop drops a whole append, so only frame
	// boundaries produce distinct images; ShortWrite and CorruptByte act
	// at byte granularity. Under -short, byte-granular modes are sampled
	// with a prime stride (still covering tears and flips inside headers,
	// lengths, checksums, and payloads); a full run visits every byte.
	stride := 1
	if testing.Short() {
		stride = 13
	}
	byteOffsets := func() []int {
		var offs []int
		for c := 0; c <= len(img); c += stride {
			offs = append(offs, c)
		}
		if offs[len(offs)-1] != len(img) {
			offs = append(offs, len(img))
		}
		return offs
	}
	matrix := []struct {
		mode    wal.FaultMode
		offsets []int
	}{
		{wal.FailStop, frameBoundaries(img)},
		{wal.ShortWrite, byteOffsets()},
		{wal.CorruptByte, byteOffsets()},
	}

	cases := 0
	for _, m := range matrix {
		for _, cut := range m.offsets {
			cases++
			label := fmt.Sprintf("%s@%d", m.mode, cut)

			// Run the workload against a faulty file. The first WAL error
			// is the crash: the process stops there. CorruptByte never
			// errors (silent corruption), so its run always completes.
			ff := &wal.FaultFile{FailAt: int64(cut), Mode: m.mode}
			log, err := wal.NewLog(ff, true)
			if err == nil {
				live := New()
				live.SetDurability(log)
				for _, op := range ops {
					if err := op.do(live); err != nil {
						break
					}
				}
			}
			surviving := ff.Bytes()

			// Recover from whatever survived.
			res, err := wal.ScanBytes(surviving)
			if err != nil {
				// The only hard scan error is corrupted magic: the file no
				// longer identifies as a WAL at all.
				if m.mode == wal.CorruptByte && cut < len(wal.Magic) && errors.Is(err, wal.ErrNotWAL) {
					continue
				}
				t.Fatalf("%s: scan: %v", label, err)
			}
			if !recordsArePrefix(res.Records, golden) {
				t.Fatalf("%s: recovered %d records are not a golden prefix", label, len(res.Records))
			}
			rec := New()
			if err := rec.Replay(res.Records); err != nil {
				t.Fatalf("%s: replay: %v", label, err)
			}
			if errs := rec.CheckInvariants(); len(errs) > 0 {
				t.Fatalf("%s: invariants after recovery: %v", label, errs)
			}

			// On a commit boundary the recovered store must equal the
			// golden store as of that commit — same tables, same rows,
			// same sequence positions.
			if want, ok := commits[len(res.Records)]; ok {
				if got := fingerprint(t, rec); !bytes.Equal(got, want) {
					t.Fatalf("%s: recovered store differs from golden store at commit with %d records",
						label, len(res.Records))
				}
				// And it must remain writable: sequences were advanced past
				// every replayed ID, so new mutations cannot collide.
				if _, err := rec.CreateRDFModel("post", "", ""); err != nil {
					t.Fatalf("%s: store not writable after recovery: %v", label, err)
				}
				if _, err := rec.NewTripleS("post", "gov:s", "gov:p", "gov:o", govAliases()); err != nil {
					t.Fatalf("%s: insert after recovery: %v", label, err)
				}
				if errs := rec.CheckInvariants(); len(errs) > 0 {
					t.Fatalf("%s: invariants after post-recovery writes: %v", label, errs)
				}
			}
		}
	}
	t.Logf("crash matrix: %d fault points over a %d-byte log (%d records)", cases, len(img), len(golden))
}

package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterGrantsUpToCapacity(t *testing.T) {
	l := NewLimiter(4, 0, 0)
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := l.TryAcquire("", 1)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	if _, err := l.TryAcquire("", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity acquire = %v, want ErrQueueFull", err)
	}
	releases[0]()
	if _, err := l.TryAcquire("", 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	for _, r := range releases[1:] {
		r()
	}
	if st := l.Stats(); st.InUse != 1 {
		t.Fatalf("in-use = %d, want 1", st.InUse)
	}
}

func TestLimiterWeights(t *testing.T) {
	l := NewLimiter(8, 0, 0)
	r1, err := l.TryAcquire("", 6)
	if err != nil {
		t.Fatal(err)
	}
	// 2 units left: weight 4 must be rejected, weight 2 admitted.
	if _, err := l.TryAcquire("", 4); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("weight-4 acquire = %v, want ErrQueueFull", err)
	}
	r2, err := l.TryAcquire("", 2)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	// A weight above capacity clamps rather than deadlocking.
	r3, err := l.TryAcquire("", 100)
	if err != nil {
		t.Fatalf("clamped over-capacity acquire: %v", err)
	}
	r3()
}

func TestLimiterQueueFIFO(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	hold, err := l.TryAcquire("", 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	starts := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			starts <- struct{}{}
			r, err := l.Acquire(context.Background(), "", 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
		<-starts
		// Serialize enqueue order so FIFO is observable.
		for l.Stats().Queued < i {
			time.Sleep(time.Millisecond)
		}
	}
	hold()
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v, want [1 2 3]", order)
	}
}

func TestLimiterQueueBound(t *testing.T) {
	l := NewLimiter(1, 2, 0)
	hold, _ := l.TryAcquire("", 1)
	defer hold()
	ctx := context.Background()
	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			cctx, cancel := context.WithTimeout(ctx, time.Minute)
			defer cancel()
			_, err := l.Acquire(cctx, "", 1)
			errs <- err
		}()
	}
	for l.Stats().Queued < 2 {
		time.Sleep(time.Millisecond)
	}
	// Third waiter: queue full, immediate rejection.
	if _, err := l.Acquire(ctx, "", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue-full acquire = %v, want ErrQueueFull", err)
	}
}

func TestLimiterWaitTimeout(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	hold, _ := l.TryAcquire("", 1)
	defer hold()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.Acquire(ctx, "", 1)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("expired wait = %v, want ErrWaitTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("wait did not respect its deadline")
	}
	if st := l.Stats(); st.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", st)
	}
}

func TestLimiterTenantCap(t *testing.T) {
	l := NewLimiter(8, 4, 2)
	rA1, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rA2, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a is at its cap; global capacity remains.
	if _, err := l.TryAcquire("a", 1); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-cap tenant acquire = %v, want ErrTenantLimit", err)
	}
	// Tenant b is unaffected.
	rB, err := l.TryAcquire("b", 2)
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	rA1()
	rA2()
	rB()
}

// A queued waiter blocked only by its tenant cap is skipped over, not a
// barrier: later requests from other tenants flow past it, and it is
// granted once its own tenant frees a slot.
func TestLimiterTenantBlockedWaiterIsSkipped(t *testing.T) {
	l := NewLimiter(4, 4, 2)
	rA1, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rX, err := l.TryAcquire("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	rY, err := l.TryAcquire("y", 1) // capacity saturated: 1+2+1
	if err != nil {
		t.Fatal(err)
	}
	defer rY()
	// Two tenant-a waiters queue behind the saturated capacity (both
	// pass the entry cap check: only 1 unit of tenant a is granted).
	grants := make(chan func(), 2)
	var granted atomic.Int32
	for i := 0; i < 2; i++ {
		go func() {
			r, err := l.Acquire(context.Background(), "a", 1)
			if err != nil {
				t.Errorf("tenant-a waiter: %v", err)
				return
			}
			granted.Add(1)
			grants <- r
		}()
		for l.Stats().Queued < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	// Free 2 units: the first a-waiter is granted (a reaches its cap of
	// 2); the second fits the remaining capacity but stays tenant-blocked.
	rX()
	var first func()
	select {
	case first = <-grants:
	case <-time.After(2 * time.Second):
		t.Fatal("first tenant-a waiter never granted")
	}
	if granted.Load() != 1 {
		t.Fatalf("granted = %d, want 1 (second waiter is tenant-blocked)", granted.Load())
	}
	// Tenant b must flow past the tenant-blocked waiter at the head.
	rB, err := l.TryAcquire("b", 1)
	if err != nil {
		t.Fatalf("tenant b behind tenant-blocked waiter: %v", err)
	}
	rB()
	// Freeing a tenant-a slot grants the blocked waiter.
	rA1()
	select {
	case r := <-grants:
		r()
	case <-time.After(2 * time.Second):
		t.Fatal("tenant-blocked waiter never granted after tenant release")
	}
	first()
	rY()
	if st := l.Stats(); st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(16, 64, 0)
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	var peak atomic.Int64
	var cur atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			w := int64(1 + i%4)
			r, err := l.Acquire(ctx, "", w)
			if err != nil {
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			if v := cur.Add(w); v > peak.Load() {
				peak.Store(v)
			}
			time.Sleep(time.Millisecond)
			cur.Add(-w)
			r()
		}(i)
	}
	wg.Wait()
	if peak.Load() > 16 {
		t.Fatalf("in-flight weight peaked at %d, capacity 16", peak.Load())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if st := l.Stats(); st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
	t.Logf("admitted %d, rejected %d, peak weight %d", admitted.Load(), rejected.Load(), peak.Load())
}

// The release func's contract is "call exactly once", but the failure
// mode of calling it twice must be a no-op, not gauge corruption: a
// handler's defer plus an explicit release on an error path is an easy
// bug, and a double-decrement would leak capacity forever (InUse going
// negative admits unbounded load).
func TestLimiterDoubleReleaseIdempotent(t *testing.T) {
	l := NewLimiter(8, 0, 4)
	r, err := l.TryAcquire("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	r()
	r() // second call must be a no-op
	st := l.Stats()
	if st.InUse != 0 {
		t.Fatalf("in-use after double release = %d, want 0", st.InUse)
	}
	if st.Tenants != 0 {
		t.Fatalf("tenant entries after double release = %d, want 0", st.Tenants)
	}
	// The tenant's full cap must still be admissible — a double decrement
	// would have corrupted the per-tenant ledger too.
	r2, err := l.TryAcquire("a", 4)
	if err != nil {
		t.Fatalf("at-cap acquire after double release: %v", err)
	}
	r2()
}

// A double release must not double-promote: with a waiter queued behind
// a full limiter, calling the same release twice may only free the one
// grant's weight — the waiter's grant must remain booked.
func TestLimiterDoubleReleaseDoesNotDoublePromote(t *testing.T) {
	l := NewLimiter(4, 4, 0)
	r, err := l.TryAcquire("", 4)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan func(), 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		wr, werr := l.Acquire(ctx, "", 2)
		if werr != nil {
			t.Errorf("queued acquire: %v", werr)
			close(granted)
			return
		}
		granted <- wr
	}()
	// Wait for the waiter to be queued before releasing.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r()
	wr := <-granted
	if wr == nil {
		t.Fatal("waiter never granted")
	}
	r() // duplicate: must not free the waiter's 2 units
	if st := l.Stats(); st.InUse != 2 {
		t.Fatalf("in-use after duplicate release = %d, want 2 (waiter's grant)", st.InUse)
	}
	wr()
	if st := l.Stats(); st.InUse != 0 {
		t.Fatalf("in-use after full drain = %d, want 0", st.InUse)
	}
}

// Many goroutines racing the same release func must decrement exactly
// once (sync.Once), keeping every gauge consistent under -race.
func TestLimiterConcurrentDoubleRelease(t *testing.T) {
	l := NewLimiter(16, 0, 0)
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := l.TryAcquire("t", 4)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	var wg sync.WaitGroup
	for _, r := range releases {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(rel func()) {
				defer wg.Done()
				rel()
			}(r)
		}
	}
	wg.Wait()
	st := l.Stats()
	if st.InUse != 0 || st.Tenants != 0 {
		t.Fatalf("gauges after concurrent double release = %+v, want zero InUse/Tenants", st)
	}
}

// A release that arrives after the limiter has fully drained — a slow
// handler finishing long after its siblings, or a duplicate call on a
// retired grant — must neither panic nor push a gauge negative, and the
// tenant ledger must not resurrect an entry for the departed tenant.
func TestLimiterLateReleaseAfterDrain(t *testing.T) {
	l := NewLimiter(8, 0, 4)
	ra, err := l.TryAcquire("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := l.TryAcquire("b", 3)
	if err != nil {
		t.Fatal(err)
	}
	late := ra // keep a handle past the drain
	ra()
	rb()
	if st := l.Stats(); st.InUse != 0 || st.Tenants != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
	late() // duplicate on a drained limiter: must be a no-op
	st := l.Stats()
	if st.InUse != 0 {
		t.Fatalf("in-use after late release = %d, want 0", st.InUse)
	}
	if st.Tenants != 0 {
		t.Fatalf("tenant entries after late release = %d, want 0", st.Tenants)
	}
	// Admission still works and the tenant cap is still enforced from a
	// clean ledger.
	if _, err := l.TryAcquire("a", 5); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-cap acquire after drain = %v, want ErrTenantLimit", err)
	}
	r, err := l.TryAcquire("a", 4)
	if err != nil {
		t.Fatalf("at-cap acquire after drain: %v", err)
	}
	r()
}

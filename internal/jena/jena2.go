// Package jena re-implements, on the same reldb engine, the baseline
// schema designs the paper compares against (§3, §7):
//
//   - Jena2's denormalized multi-model triple store: per-model statement
//     tables holding text values directly, a property-class table for
//     reified statements, and optional property tables (§3.1).
//   - Jena1's normalized triple store: a statement table of references
//     into resource/literal tables, requiring a three-way join for find
//     operations (§3.1).
//   - The naïve reification baseline that stores the full four-triple
//     reification quad (§5, §7.3).
//
// Re-implementing the published schemas on the engine under test isolates
// exactly the variable the paper varies — schema design.
package jena

import (
	"fmt"
	"strings"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Statement is a lexical triple in Jena's value-encoded form.
type Statement struct {
	Subject   rdfterm.Term
	Predicate rdfterm.Term
	Object    rdfterm.Term
}

// encodeTerm flattens a term to Jena2's prefixed column encoding: Jena2
// stores values directly in statement-table columns with a type prefix
// ("Uv::" for URIs, "Lv::" literals, "Bv::" blank nodes — simplified from
// Jena2's actual encoding but structurally identical).
func encodeTerm(t rdfterm.Term) string {
	switch t.Kind {
	case rdfterm.URI:
		return "Uv::" + t.Value
	case rdfterm.Blank:
		return "Bv::" + t.Value
	default:
		return "Lv::" + t.Language + "::" + t.Datatype + "::" + t.Value
	}
}

// decodeTerm reverses encodeTerm.
func decodeTerm(s string) (rdfterm.Term, error) {
	switch {
	case strings.HasPrefix(s, "Uv::"):
		return rdfterm.NewURI(s[4:]), nil
	case strings.HasPrefix(s, "Bv::"):
		return rdfterm.NewBlank(s[4:]), nil
	case strings.HasPrefix(s, "Lv::"):
		rest := s[4:]
		parts := strings.SplitN(rest, "::", 3)
		if len(parts) != 3 {
			return rdfterm.Term{}, fmt.Errorf("jena: bad literal encoding %q", s)
		}
		t := rdfterm.Term{Kind: rdfterm.Literal, Language: parts[0], Datatype: parts[1], Value: parts[2]}
		return t, nil
	}
	return rdfterm.Term{}, fmt.Errorf("jena: bad term encoding %q", s)
}

// Jena2Store is the Jena2 design: models in separate tables, asserted
// statements in one table per model with the text values stored
// redundantly in subject/predicate/object columns, reified statements in a
// property-class table, and optional property tables (§3.1).
type Jena2Store struct {
	db     *reldb.Database
	models map[string]*jena2Model
}

type jena2Model struct {
	name     string
	stmts    *reldb.Table // asserted statements: SUBJ, PROP, OBJ (text)
	reified  *reldb.Table // property-class table: STMT_URI, SUBJ, PROP, OBJ, TYPE
	subIdx   *reldb.Index
	propIdx  *reldb.Index
	objIdx   *reldb.Index
	spoIdx   *reldb.Index
	reifIdx  *reldb.Index // (SUBJ, PROP, OBJ) on the reified table
	reifURI  *reldb.Index // (STMT_URI)
	propTabs map[string]*propertyTable
	reifSeq  *reldb.Sequence
}

// NewJena2Store creates an empty Jena2-style store.
func NewJena2Store() *Jena2Store {
	return &Jena2Store{
		db:     reldb.NewDatabase("JENA2"),
		models: make(map[string]*jena2Model),
	}
}

// CreateModel creates the per-model asserted/reified statement tables
// ("models are stored in separate tables", §3.1).
func (j *Jena2Store) CreateModel(name string) error {
	if _, dup := j.models[name]; dup {
		return fmt.Errorf("jena: model %q already exists", name)
	}
	stmts, err := j.db.CreateTable(reldb.NewSchema("jena_"+name+"_stmt",
		reldb.Column{Name: "SUBJ", Kind: reldb.KindString},
		reldb.Column{Name: "PROP", Kind: reldb.KindString},
		reldb.Column{Name: "OBJ", Kind: reldb.KindString},
	))
	if err != nil {
		return err
	}
	reified, err := j.db.CreateTable(reldb.NewSchema("jena_"+name+"_reif",
		reldb.Column{Name: "STMT_URI", Kind: reldb.KindString},
		reldb.Column{Name: "SUBJ", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "PROP", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "OBJ", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "HAS_TYPE", Kind: reldb.KindBool},
	))
	if err != nil {
		return err
	}
	m := &jena2Model{name: name, stmts: stmts, reified: reified, propTabs: map[string]*propertyTable{}}
	if m.subIdx, err = stmts.CreateIndex("sub", false, "SUBJ"); err != nil {
		return err
	}
	if m.propIdx, err = stmts.CreateIndex("prop", false, "PROP"); err != nil {
		return err
	}
	if m.objIdx, err = stmts.CreateIndex("obj", false, "OBJ"); err != nil {
		return err
	}
	if m.spoIdx, err = stmts.CreateIndex("spo", false, "SUBJ", "PROP", "OBJ"); err != nil {
		return err
	}
	if m.reifIdx, err = reified.CreateIndex("rspo", false, "SUBJ", "PROP", "OBJ"); err != nil {
		return err
	}
	if m.reifURI, err = reified.CreateIndex("ruri", true, "STMT_URI"); err != nil {
		return err
	}
	if m.reifSeq, err = j.db.CreateSequence("jena_"+name+"_reif_seq", 1); err != nil {
		return err
	}
	j.models[name] = m
	return nil
}

func (j *Jena2Store) model(name string) (*jena2Model, error) {
	m, ok := j.models[name]
	if !ok {
		return nil, fmt.Errorf("jena: no such model %q", name)
	}
	return m, nil
}

// Add inserts an asserted statement. Text values are stored redundantly
// ("Jena2 thereby consumes more storage space than Jena1", §3.1). When a
// property table is configured for the predicate, the statement goes there
// instead of the statement table.
func (j *Jena2Store) Add(model string, st Statement) error {
	m, err := j.model(model)
	if err != nil {
		return err
	}
	if st.Predicate.Kind != rdfterm.URI {
		return fmt.Errorf("jena: predicate must be a URI")
	}
	if pt, ok := m.propTabs[st.Predicate.Value]; ok {
		return pt.add(st.Subject, st.Object)
	}
	_, err = m.stmts.Insert(reldb.Row{
		reldb.String_(encodeTerm(st.Subject)),
		reldb.String_(encodeTerm(st.Predicate)),
		reldb.String_(encodeTerm(st.Object)),
	})
	return err
}

// Find returns statements matching the pattern (nil = wildcard), like
// Jena's listStatements/find. Index selection mirrors Jena2: subject,
// then predicate, then object index; full scan otherwise. Property tables
// are consulted when the predicate matches one.
func (j *Jena2Store) Find(model string, sub, pred, obj *rdfterm.Term) ([]Statement, error) {
	m, err := j.model(model)
	if err != nil {
		return nil, err
	}
	var out []Statement
	appendRow := func(r reldb.Row) error {
		s, err := decodeTerm(r[0].Str())
		if err != nil {
			return err
		}
		p, err := decodeTerm(r[1].Str())
		if err != nil {
			return err
		}
		o, err := decodeTerm(r[2].Str())
		if err != nil {
			return err
		}
		st := Statement{Subject: s, Predicate: p, Object: o}
		if sub != nil && !st.Subject.Equal(*sub) {
			return nil
		}
		if pred != nil && !st.Predicate.Equal(*pred) {
			return nil
		}
		if obj != nil && !st.Object.Equal(*obj) {
			return nil
		}
		out = append(out, st)
		return nil
	}

	var it reldb.Iterator
	switch {
	case sub != nil && pred != nil && obj != nil:
		it = reldb.NewIndexEq(m.stmts, m.spoIdx, reldb.Key{
			reldb.String_(encodeTerm(*sub)), reldb.String_(encodeTerm(*pred)), reldb.String_(encodeTerm(*obj))})
	case sub != nil:
		it = reldb.NewIndexEq(m.stmts, m.subIdx, reldb.Key{reldb.String_(encodeTerm(*sub))})
	case pred != nil:
		it = reldb.NewIndexEq(m.stmts, m.propIdx, reldb.Key{reldb.String_(encodeTerm(*pred))})
	case obj != nil:
		it = reldb.NewIndexEq(m.stmts, m.objIdx, reldb.Key{reldb.String_(encodeTerm(*obj))})
	default:
		it = reldb.NewTableScan(m.stmts)
	}
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if err := appendRow(r); err != nil {
			return nil, err
		}
	}
	// Property tables hold statements for their predicate.
	for predURI, pt := range m.propTabs {
		if pred != nil && pred.Value != predURI {
			continue
		}
		sts, err := pt.find(sub, obj)
		if err != nil {
			return nil, err
		}
		out = append(out, sts...)
	}
	return out, nil
}

// Contains reports whether the exact statement is asserted.
func (j *Jena2Store) Contains(model string, st Statement) (bool, error) {
	got, err := j.Find(model, &st.Subject, &st.Predicate, &st.Object)
	if err != nil {
		return false, err
	}
	return len(got) > 0, nil
}

// Len returns the number of asserted statements (including property-table
// rows).
func (j *Jena2Store) Len(model string) (int, error) {
	m, err := j.model(model)
	if err != nil {
		return 0, err
	}
	n := m.stmts.Len()
	for _, pt := range m.propTabs {
		n += pt.table.Len()
	}
	return n, nil
}

// TextBytes sums the stored statement text of a model — redundant per
// occurrence, since Jena2 keeps values inline in the statement tables
// ("text values are therefore stored redundantly", §3.1).
func (j *Jena2Store) TextBytes(model string) (int64, error) {
	m, err := j.model(model)
	if err != nil {
		return 0, err
	}
	var total int64
	m.stmts.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		total += int64(len(r[0].Str()) + len(r[1].Str()) + len(r[2].Str()))
		return true
	})
	for _, pt := range m.propTabs {
		pt.table.Scan(func(_ reldb.RowID, r reldb.Row) bool {
			total += int64(len(r[0].Str()) + len(r[1].Str()))
			return true
		})
	}
	return total, nil
}

// --- reification (§3.1): property-class table ---

// Reify records a reified statement: one row with all attributes present
// ("a single row with all attributes present represents a reified
// triple"). It returns the statement URI naming the reification.
func (j *Jena2Store) Reify(model string, st Statement) (string, error) {
	m, err := j.model(model)
	if err != nil {
		return "", err
	}
	// Idempotent on the same statement: reuse the existing row.
	key := reldb.Key{
		reldb.String_(encodeTerm(st.Subject)),
		reldb.String_(encodeTerm(st.Predicate)),
		reldb.String_(encodeTerm(st.Object)),
	}
	if rid, ok := m.reifIdx.LookupOne(key); ok {
		r, err := m.reified.Get(rid)
		if err != nil {
			return "", err
		}
		return r[0].Str(), nil
	}
	uri := fmt.Sprintf("urn:jena:reif:%s:%d", model, m.reifSeq.Next())
	_, err = m.reified.Insert(reldb.Row{
		reldb.String_(uri), key[0], key[1], key[2], reldb.Bool(true),
	})
	if err != nil {
		return "", err
	}
	return uri, nil
}

// IsReified is Jena's Model.isReified(stmt) (Figure 11): a single lookup
// in the property-class table.
func (j *Jena2Store) IsReified(model string, st Statement) (bool, error) {
	m, err := j.model(model)
	if err != nil {
		return false, err
	}
	key := reldb.Key{
		reldb.String_(encodeTerm(st.Subject)),
		reldb.String_(encodeTerm(st.Predicate)),
		reldb.String_(encodeTerm(st.Object)),
	}
	return m.reifIdx.Contains(key), nil
}

// ReifiedCount returns the number of reified statements in a model.
func (j *Jena2Store) ReifiedCount(model string) (int, error) {
	m, err := j.model(model)
	if err != nil {
		return 0, err
	}
	return m.reified.Len(), nil
}

// --- property tables (§3.1) ---

// propertyTable stores subject-value pairs for one predicate; the
// predicate URI itself is not stored ("modest storage reduction, since
// predicate URIs are not stored").
type propertyTable struct {
	predicate string
	table     *reldb.Table
	subIdx    *reldb.Index
}

// CreatePropertyTable configures a property table for a predicate on a
// model; future Adds of that predicate are routed to it. It must be
// created before data for the predicate is loaded (as in Jena2, where
// property tables are declared at graph creation).
func (j *Jena2Store) CreatePropertyTable(model, predicate string) error {
	m, err := j.model(model)
	if err != nil {
		return err
	}
	if _, dup := m.propTabs[predicate]; dup {
		return fmt.Errorf("jena: property table for %q already exists", predicate)
	}
	name := fmt.Sprintf("jena_%s_prop%d", model, len(m.propTabs)+1)
	tb, err := j.db.CreateTable(reldb.NewSchema(name,
		reldb.Column{Name: "SUBJ", Kind: reldb.KindString},
		reldb.Column{Name: "VAL", Kind: reldb.KindString},
	))
	if err != nil {
		return err
	}
	subIdx, err := tb.CreateIndex("sub", false, "SUBJ")
	if err != nil {
		return err
	}
	m.propTabs[predicate] = &propertyTable{predicate: predicate, table: tb, subIdx: subIdx}
	return nil
}

func (pt *propertyTable) add(sub, obj rdfterm.Term) error {
	_, err := pt.table.Insert(reldb.Row{
		reldb.String_(encodeTerm(sub)),
		reldb.String_(encodeTerm(obj)),
	})
	return err
}

func (pt *propertyTable) find(sub, obj *rdfterm.Term) ([]Statement, error) {
	var it reldb.Iterator
	if sub != nil {
		it = reldb.NewIndexEq(pt.table, pt.subIdx, reldb.Key{reldb.String_(encodeTerm(*sub))})
	} else {
		it = reldb.NewTableScan(pt.table)
	}
	pred := rdfterm.NewURI(pt.predicate)
	var out []Statement
	for {
		r, ok := it.Next()
		if !ok {
			return out, nil
		}
		s, err := decodeTerm(r[0].Str())
		if err != nil {
			return nil, err
		}
		o, err := decodeTerm(r[1].Str())
		if err != nil {
			return nil, err
		}
		if obj != nil && !o.Equal(*obj) {
			continue
		}
		out = append(out, Statement{Subject: s, Predicate: pred, Object: o})
	}
}

package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.snap")
	s := newStoreWithModel(t, "m")
	a := govAliases()
	for i := 0; i < 5; i++ {
		if _, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o"+string(rune('a'+i)), a); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap + tmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("stale tmp left behind after successful SaveFile: %v", err)
	}
	loaded, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	n, err := loaded.NumTriples("m")
	if err != nil || n != 5 {
		t.Fatalf("reloaded NumTriples = %d, %v", n, err)
	}
	assertInvariants(t, loaded)
}

// A crash mid-checkpoint leaves a stray *.tmp; loading must ignore and
// remove it, surfacing only the previous good snapshot.
func TestLoadFileRemovesStaleTmp(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.snap")
	s := newStoreWithModel(t, "m")
	a := govAliases()
	if _, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o", a); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn in-progress snapshot from a crashed checkpoint.
	if err := os.WriteFile(snap+tmpSuffix, []byte("GOBSNAP1 torn half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := loaded.NumTriples("m"); n != 1 {
		t.Fatalf("loaded wrong snapshot: %d triples", n)
	}
	if _, err := os.Stat(snap + tmpSuffix); !os.IsNotExist(err) {
		t.Fatal("stale tmp not removed by LoadFile")
	}
}

// Full file-based lifecycle: fresh recover → mutate durably → recover
// replays the WAL → checkpoint truncates it → recover uses the snapshot.
func TestRecoverFilesCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.snap")
	walPath := filepath.Join(dir, "store.wal")
	a := govAliases()

	s, log, info, err := RecoverFiles(snap, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Applied != 0 {
		t.Fatalf("fresh recover applied %d records", info.Applied)
	}
	s.SetDurability(log)
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o", a); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart: no snapshot yet, everything comes from the WAL.
	s2, log2, info2, err := RecoverFiles(snap, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Applied == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	if n, _ := s2.NumTriples("m"); n != 1 {
		t.Fatalf("replayed store has %d triples", n)
	}
	s2.SetDurability(log2)
	if _, err := s2.NewTripleS("m", "gov:s", "gov:p", "gov:o2", a); err != nil {
		t.Fatal(err)
	}

	// Checkpoint: snapshot becomes the baseline, WAL resets to empty.
	if err := Checkpoint(s2, snap, log2); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(wal.Magic)) {
		t.Fatalf("WAL not truncated to header by checkpoint: %d bytes", fi.Size())
	}

	s3, log3, info3, err := RecoverFiles(snap, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if info3.Applied != 0 {
		t.Fatalf("post-checkpoint recover replayed %d records", info3.Applied)
	}
	if n, _ := s3.NumTriples("m"); n != 2 {
		t.Fatalf("post-checkpoint store has %d triples", n)
	}
	assertInvariants(t, s3)
}

// SaveFile over an existing snapshot must never destroy the old one
// before the new one is fully durable: a failed write leaves the
// previous snapshot intact.
func TestSaveFilePreservesOldSnapshotOnFailure(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.snap")
	s := newStoreWithModel(t, "m")
	a := govAliases()
	if _, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o", a); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	// Force the staging write to fail: make the tmp path a directory.
	if err := os.Mkdir(snap+tmpSuffix, 0o755); err != nil {
		t.Fatal(err)
	}
	s.NewTripleS("m", "gov:s", "gov:p", "gov:o2", a)
	if err := s.SaveFile(snap); err == nil {
		t.Fatal("SaveFile succeeded with unwritable tmp path")
	}
	os.Remove(snap + tmpSuffix)
	loaded, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := loaded.NumTriples("m"); n != 1 {
		t.Fatalf("old snapshot damaged by failed SaveFile: %d triples", n)
	}
}

package core

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Triple is the SDO_RDF_TRIPLE object type (Figure 5): the lexical
// <subject, property, object> view of a statement.
type Triple struct {
	Subject  rdfterm.Term
	Property rdfterm.Term
	Object   rdfterm.Term
}

// String renders the triple like the paper's angle-bracket examples.
func (t Triple) String() string {
	return "<" + t.Subject.Lexical() + ", " + t.Property.Lexical() + ", " + t.Object.Lexical() + ">"
}

// TripleS is the SDO_RDF_TRIPLE_S storage object type (Figure 5, Figure
// 6): five IDs pointing at the triple maintained in the central schema.
// Application tables store TripleS values; the text lives once in
// rdf_value$.
type TripleS struct {
	store *Store
	TID   int64 // rdf_t_id: LINK_ID
	MID   int64 // rdf_m_id: MODEL_ID
	SID   int64 // rdf_s_id: subject VALUE_ID
	PID   int64 // rdf_p_id: predicate VALUE_ID
	OID   int64 // rdf_o_id: object VALUE_ID
}

// String renders the storage object as in Figure 6.
func (t TripleS) String() string {
	return fmt.Sprintf("SDO_RDF_TRIPLE_S (%d, %d, %d, %d, %d)", t.TID, t.MID, t.SID, t.PID, t.OID)
}

// IsZero reports whether the object is unset.
func (t TripleS) IsZero() bool { return t.store == nil }

// GetTriple returns the full lexical triple — the GET_TRIPLE() member
// function. One link-row fetch plus three value lookups.
func (t TripleS) GetTriple() (Triple, error) {
	if t.store == nil {
		return Triple{}, fmt.Errorf("core: zero TripleS")
	}
	sub, err := t.store.GetValue(t.SID)
	if err != nil {
		return Triple{}, err
	}
	prop, err := t.store.GetValue(t.PID)
	if err != nil {
		return Triple{}, err
	}
	obj, err := t.store.GetValue(t.OID)
	if err != nil {
		return Triple{}, err
	}
	return Triple{Subject: sub, Property: prop, Object: obj}, nil
}

// GetSubject returns the subject text — the GET_SUBJECT() member function.
func (t TripleS) GetSubject() (string, error) {
	if t.store == nil {
		return "", fmt.Errorf("core: zero TripleS")
	}
	v, err := t.store.GetValue(t.SID)
	if err != nil {
		return "", err
	}
	return v.Lexical(), nil
}

// GetProperty returns the predicate text — the GET_PROPERTY() member
// function.
func (t TripleS) GetProperty() (string, error) {
	if t.store == nil {
		return "", fmt.Errorf("core: zero TripleS")
	}
	v, err := t.store.GetValue(t.PID)
	if err != nil {
		return "", err
	}
	return v.Lexical(), nil
}

// GetObject returns the object text — the GET_OBJECT() member function.
// Like the paper's CLOB return type, it returns the full text even for
// long literals.
func (t TripleS) GetObject() (string, error) {
	if t.store == nil {
		return "", fmt.Errorf("core: zero TripleS")
	}
	v, err := t.store.GetValue(t.OID)
	if err != nil {
		return "", err
	}
	return v.Lexical(), nil
}

// GetTripleByID returns the lexical triple stored under a LINK_ID.
func (s *Store) GetTripleByID(linkID int64) (Triple, error) {
	ts, err := s.GetTripleS(linkID)
	if err != nil {
		return Triple{}, err
	}
	return ts.GetTriple()
}

// GetTripleS returns the storage object for a LINK_ID.
func (s *Store) GetTripleS(linkID int64) (TripleS, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getTripleSLocked(linkID)
}

// getTripleSLocked is GetTripleS for callers already holding s.mu.
func (s *Store) getTripleSLocked(linkID int64) (TripleS, error) {
	rid, ok := s.linkPK.LookupOne(reldb.Key{reldb.Int(linkID)})
	if !ok {
		return TripleS{}, fmt.Errorf("%w: LINK_ID %d", ErrNoSuchTriple, linkID)
	}
	r, err := s.links.Get(rid)
	if err != nil {
		return TripleS{}, err
	}
	return s.tripleSFromRow(r), nil
}

func (s *Store) tripleSFromRow(r reldb.Row) TripleS {
	return TripleS{
		store: s,
		TID:   r[lcLinkID].Int64(),
		MID:   r[lcModelID].Int64(),
		SID:   r[lcStartNodeID].Int64(),
		PID:   r[lcPValueID].Int64(),
		OID:   r[lcEndNodeID].Int64(),
	}
}

// LinkInfo exposes the bookkeeping columns of a stored triple's rdf_link$
// row — LINK_TYPE, COST, CONTEXT, REIF_LINK (§4) — for tests, tools, and
// the experiments.
type LinkInfo struct {
	LinkID      int64
	ModelID     int64
	StartNodeID int64
	PValueID    int64
	EndNodeID   int64
	CanonEndID  int64
	LinkType    string
	Cost        int64
	Context     string
	ReifLink    bool
}

// LinkInfo returns the bookkeeping columns for a LINK_ID.
func (s *Store) LinkInfo(linkID int64) (LinkInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rid, ok := s.linkPK.LookupOne(reldb.Key{reldb.Int(linkID)})
	if !ok {
		return LinkInfo{}, fmt.Errorf("%w: LINK_ID %d", ErrNoSuchTriple, linkID)
	}
	r, err := s.links.Get(rid)
	if err != nil {
		return LinkInfo{}, err
	}
	return LinkInfo{
		LinkID:      r[lcLinkID].Int64(),
		ModelID:     r[lcModelID].Int64(),
		StartNodeID: r[lcStartNodeID].Int64(),
		PValueID:    r[lcPValueID].Int64(),
		EndNodeID:   r[lcEndNodeID].Int64(),
		CanonEndID:  r[lcCanonEndNodeID].Int64(),
		LinkType:    r[lcLinkType].Str(),
		Cost:        r[lcCost].Int64(),
		Context:     r[lcContext].Str(),
		ReifLink:    r[lcReifLink].Str() == "Y",
	}, nil
}

// ReconstructTripleS rebinds a bare ID tuple (e.g. read back from an
// application table) to the store so member functions work.
func (s *Store) ReconstructTripleS(tid, mid, sid, pid, oid int64) TripleS {
	return TripleS{store: s, TID: tid, MID: mid, SID: sid, PID: pid, OID: oid}
}

package repro

// Cross-module integration tests: generator → serializer → bulk loader →
// store → match/inference/NDM, and cross-checks between the object store
// and the Jena baselines over identical data.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/jena"
	"repro/internal/match"
	"repro/internal/ndm"
	"repro/internal/ntriples"
	"repro/internal/rdfterm"
	"repro/internal/rdfxml"
	"repro/internal/reify"
	"repro/internal/uniprot"
)

// TestPipelineGenerateSerializeLoadQuery drives the full data path: the
// UniProt generator emits N-Triples with reification quads expanded the
// naïve way; the loader folds them back into DBUri reifications; queries
// then see the paper's probe results.
func TestPipelineGenerateSerializeLoadQuery(t *testing.T) {
	// Generate 2k triples; serialize with reification quads expanded.
	var buf bytes.Buffer
	w := ntriples.NewWriter(&buf)
	quadSeq := 0
	_, err := uniprot.Stream(uniprot.Config{Triples: 2000, Reified: 80, Seed: 11},
		func(tr ntriples.Triple, doReify bool) error {
			if err := w.Write(tr); err != nil {
				return err
			}
			if !doReify {
				return nil
			}
			// Expand the quad as a naïve serializer would.
			quadSeq++
			r := rdfterm.NewURI(fmt.Sprintf("http://reif/%d", quadSeq))
			for _, q := range []ntriples.Triple{
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFType), Object: rdfterm.NewURI(rdfterm.RDFStatement)},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFSubject), Object: tr.Subject},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFPredicate), Object: tr.Predicate},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFObject), Object: tr.Object},
			} {
				if err := w.Write(q); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Load with quad folding.
	store := core.New()
	if _, err := store.CreateRDFModel("up", "", ""); err != nil {
		t.Fatal(err)
	}
	loader := &reify.Loader{Store: store, Model: "up"}
	stats, err := loader.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != quadSeq {
		t.Fatalf("folded %d quads, want %d", stats.QuadsFolded, quadSeq)
	}
	// Store rows = base triples + one reification row per quad (the quads'
	// 4x expansion collapsed).
	n, _ := store.NumTriples("up")
	if n != 2000+quadSeq {
		t.Fatalf("stored rows = %d, want %d", n, 2000+quadSeq)
	}
	// The probe statement is reified; its base CONTEXT is D (it was
	// asserted directly in the stream).
	ok, err := store.IsReified("up", uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.ProbeSeeAlso, nil)
	if err != nil || !ok {
		t.Fatalf("probe IsReified = %v, %v", ok, err)
	}
	ts, found, _ := store.IsTriple("up", uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.ProbeSeeAlso, nil)
	if !found {
		t.Fatal("probe base triple missing")
	}
	info, _ := store.LinkInfo(ts.TID)
	if info.Context != core.ContextDirect {
		t.Fatalf("probe CONTEXT = %s", info.Context)
	}
	// Subject query returns the probe's 24 rows.
	rows, err := store.FindBySubjectText("up", uniprot.ProbeSubject)
	if err != nil || len(rows) != uniprot.ProbeRows {
		t.Fatalf("probe rows = %d, %v", len(rows), err)
	}
	// Match sees the same rows.
	rs, err := match.Match(store, fmt.Sprintf("(<%s> ?p ?o)", uniprot.ProbeSubject),
		match.Options{Models: []string{"up"}})
	if err != nil || rs.Len() != uniprot.ProbeRows {
		t.Fatalf("match rows = %d, %v", rs.Len(), err)
	}
}

// TestCoreVsJenaFindEquivalence loads identical data into the object store
// and both Jena baselines and checks all three agree on every query shape.
func TestCoreVsJenaFindEquivalence(t *testing.T) {
	triples, _, err := uniprot.Generate(uniprot.Config{Triples: 1500, Reified: 0, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	store := core.New()
	if _, err := store.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	j1 := jena.NewJena1Store()
	j2 := jena.NewJena2Store()
	if err := j2.CreateModel("m"); err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples {
		if _, err := store.InsertTerms("m", tr.T.Subject, tr.T.Predicate, tr.T.Object); err != nil {
			t.Fatal(err)
		}
		st := jena.Statement{Subject: tr.T.Subject, Predicate: tr.T.Predicate, Object: tr.T.Object}
		if err := j1.Add(st); err != nil {
			t.Fatal(err)
		}
		if err := j2.Add("m", st); err != nil {
			t.Fatal(err)
		}
	}

	canonCore := func(ts []core.TripleS) []string {
		var out []string
		for _, x := range ts {
			tr, err := x.GetTriple()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tr.Subject.String()+"|"+tr.Property.String()+"|"+tr.Object.String())
		}
		sort.Strings(out)
		return out
	}
	canonJena := func(ss []jena.Statement) []string {
		var out []string
		for _, s := range ss {
			out = append(out, s.Subject.String()+"|"+s.Predicate.String()+"|"+s.Object.String())
		}
		sort.Strings(out)
		return out
	}

	sub := rdfterm.NewURI(uniprot.ProbeSubject)
	pred := rdfterm.NewURI(uniprot.SeeAlso)
	obj := rdfterm.NewURI(uniprot.ProbeSeeAlso)
	queries := []core.Pattern{
		{Subject: &sub},
		{Predicate: &pred},
		{Object: &obj},
		{Subject: &sub, Predicate: &pred},
	}
	for qi, q := range queries {
		coreRes, err := store.Find("m", q)
		if err != nil {
			t.Fatal(err)
		}
		j1Res, err := j1.Find(q.Subject, q.Predicate, q.Object)
		if err != nil {
			t.Fatal(err)
		}
		j2Res, err := j2.Find("m", q.Subject, q.Predicate, q.Object)
		if err != nil {
			t.Fatal(err)
		}
		c, a, b := canonCore(coreRes), canonJena(j1Res), canonJena(j2Res)
		if strings.Join(c, ";") != strings.Join(a, ";") {
			t.Errorf("query %d: core (%d rows) != jena1 (%d rows)", qi, len(c), len(a))
		}
		if strings.Join(c, ";") != strings.Join(b, ";") {
			t.Errorf("query %d: core (%d rows) != jena2 (%d rows)", qi, len(c), len(b))
		}
	}
}

// TestInferenceOverLoadedCorpus builds a protein-class hierarchy on top of
// loaded UniProt-like data and checks RDFS typing propagates.
func TestInferenceOverLoadedCorpus(t *testing.T) {
	store := core.New()
	if _, err := store.CreateRDFModel("up", "", ""); err != nil {
		t.Fatal(err)
	}
	triples, _, _ := uniprot.Generate(uniprot.Config{Triples: 500, Reified: 0, Seed: 3})
	for _, tr := range triples {
		if _, err := store.InsertTerms("up", tr.T.Subject, tr.T.Predicate, tr.T.Object); err != nil {
			t.Fatal(err)
		}
	}
	// Ontology: up:Protein ⊂ up:Macromolecule.
	if _, err := store.InsertTerms("up",
		rdfterm.NewURI(uniprot.ProteinType),
		rdfterm.NewURI(rdfterm.RDFSSubClassOf),
		rdfterm.NewURI(uniprot.CoreNS+"Macromolecule")); err != nil {
		t.Fatal(err)
	}
	cat := inference.NewCatalog(store)
	if _, err := cat.CreateRulesIndex("upix", []string{"up"}, []string{inference.RDFSRulebaseName}); err != nil {
		t.Fatal(err)
	}
	rs, err := match.Match(store,
		fmt.Sprintf("(?x rdf:type <%sMacromolecule>)", uniprot.CoreNS),
		match.Options{
			Models:    []string{"up"},
			Rulebases: []string{inference.RDFSRulebaseName},
			Resolver:  cat,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("no proteins inferred as macromolecules")
	}
	// Every result must actually be typed up:Protein in the base model.
	for i := 0; i < rs.Len(); i++ {
		x, _ := rs.Get(i, "x")
		if _, ok, _ := store.IsTripleTerms("up", x,
			rdfterm.NewURI(rdfterm.RDFType), rdfterm.NewURI(uniprot.ProteinType)); !ok {
			t.Errorf("%v inferred without base typing", x)
		}
	}
}

// TestNetworkAnalysisOverLoadedData checks that NDM operations run over
// RDF data loaded through the normal insert path.
func TestNetworkAnalysisOverLoadedData(t *testing.T) {
	store := core.New()
	if _, err := store.CreateRDFModel("up", "", ""); err != nil {
		t.Fatal(err)
	}
	triples, _, _ := uniprot.Generate(uniprot.Config{Triples: 300, Reified: 0, Seed: 4})
	for _, tr := range triples {
		if _, err := store.InsertTerms("up", tr.T.Subject, tr.T.Predicate, tr.T.Object); err != nil {
			t.Fatal(err)
		}
	}
	net, err := store.Network("up")
	if err != nil {
		t.Fatal(err)
	}
	probeID, ok := net.NodeID(rdfterm.NewURI(uniprot.ProbeSubject))
	if !ok {
		t.Fatal("probe node missing from network")
	}
	// Probe has 24 outgoing links (its triples) and reaches its objects.
	_, out := ndm.Degree(net, probeID)
	if out != uniprot.ProbeRows {
		t.Fatalf("probe out-degree = %d, want %d", out, uniprot.ProbeRows)
	}
	reach, err := ndm.Reachable(net, probeID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) == 0 || len(reach) > uniprot.ProbeRows {
		t.Fatalf("probe reachable set = %d", len(reach))
	}
	comps := ndm.ConnectedComponents(net)
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != store.NumNodes() {
		t.Fatalf("components cover %d nodes, store has %d", total, store.NumNodes())
	}
}

// TestDeleteKeepsSystemsConsistent deletes triples and re-checks queries,
// reification state, and the network view.
func TestDeleteKeepsSystemsConsistent(t *testing.T) {
	store := core.New()
	if _, err := store.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
	ts, err := store.NewTripleS("m", "x:a", "x:p", "x:b", a)
	if err != nil {
		t.Fatal(err)
	}
	store.NewTripleS("m", "x:b", "x:p", "x:c", a)
	if _, err := store.Reify("m", ts.TID); err != nil {
		t.Fatal(err)
	}
	// Delete the base triple: reification row remains (dangling DBUri is
	// possible, as in Oracle where cleanup is the application's job), but
	// the base is gone from queries.
	if err := store.DeleteTriple("m", "x:a", "x:p", "x:b", a); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := store.IsTriple("m", "x:a", "x:p", "x:b", a); ok {
		t.Fatal("deleted triple still visible")
	}
	rs, err := match.Match(store, "(?s ?p ?o)", match.Options{Models: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rs.Len(); i++ {
		s, _ := rs.Get(i, "s")
		if s.Value == "http://x#a" {
			t.Fatal("deleted subject appears in match results")
		}
	}
	net, _ := store.Network("m")
	if _, ok := net.NodeID(rdfterm.NewURI("http://x#a")); ok {
		// Node a should be gone (only link referencing it was deleted).
		t.Log("note: node a still present (value interning keeps text)")
	}
}

// TestReificationSchemesAgree cross-validates the streamlined DBUri scheme
// against the naive quad baseline: on identical random data with an
// identical reification choice, IsReified must answer the same for every
// statement.
func TestReificationSchemesAgree(t *testing.T) {
	store := core.New()
	if _, err := store.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	js := jena.NewJena2Store()
	if err := js.CreateModel("m"); err != nil {
		t.Fatal(err)
	}
	quad := jena.NewQuadReifier(js, "m")

	rng := func(i int) bool { return i%3 == 0 } // deterministic "random" choice
	type stmt struct {
		s, p, o string
		reified bool
	}
	var stmts []stmt
	for i := 0; i < 60; i++ {
		st := stmt{
			s:       fmt.Sprintf("http://s/%d", i%20),
			p:       fmt.Sprintf("http://p/%d", i%5),
			o:       fmt.Sprintf("http://o/%d", i),
			reified: rng(i),
		}
		stmts = append(stmts, st)
		ts, err := store.NewTripleS("m", st.s, st.p, st.o, nil)
		if err != nil {
			t.Fatal(err)
		}
		jst := jena.Statement{
			Subject:   rdfterm.NewURI(st.s),
			Predicate: rdfterm.NewURI(st.p),
			Object:    rdfterm.NewURI(st.o),
		}
		if err := js.Add("m", jst); err != nil {
			t.Fatal(err)
		}
		if st.reified {
			if _, err := store.Reify("m", ts.TID); err != nil {
				t.Fatal(err)
			}
			if _, err := quad.Reify(jst); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, st := range stmts {
		coreGot, err := store.IsReified("m", st.s, st.p, st.o, nil)
		if err != nil {
			t.Fatal(err)
		}
		quadGot, err := quad.IsReified(jena.Statement{
			Subject:   rdfterm.NewURI(st.s),
			Predicate: rdfterm.NewURI(st.p),
			Object:    rdfterm.NewURI(st.o),
		})
		if err != nil {
			t.Fatal(err)
		}
		if coreGot != quadGot || coreGot != st.reified {
			t.Fatalf("disagreement on <%s %s %s>: core=%v quad=%v want=%v",
				st.s, st.p, st.o, coreGot, quadGot, st.reified)
		}
	}
}

// TestRDFXMLThroughFullStack: RDF/XML → parse → fold → store → match.
func TestRDFXMLThroughFullStack(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:gov="http://www.us.gov#">
  <rdf:Description rdf:about="http://www.us.gov#files">
    <gov:terrorSuspect rdf:ID="c1" rdf:resource="http://www.us.id#JohnDoe"/>
    <gov:terrorSuspect rdf:resource="http://www.us.id#JaneDoe"/>
  </rdf:Description>
</rdf:RDF>`
	triples, err := rdfxml.Parse(strings.NewReader(doc), rdfxml.Options{Base: "http://base"})
	if err != nil {
		t.Fatal(err)
	}
	store := core.New()
	if _, err := store.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	loader := &reify.Loader{Store: store, Model: "m"}
	stats, err := loader.LoadTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 1 {
		t.Fatalf("folded = %d", stats.QuadsFolded)
	}
	// The rdf:ID statement is reified; the other is not.
	got, _ := store.IsReified("m", "http://www.us.gov#files", "http://www.us.gov#terrorSuspect", "http://www.us.id#JohnDoe", nil)
	if !got {
		t.Fatal("rdf:ID statement not reified after fold")
	}
	got, _ = store.IsReified("m", "http://www.us.gov#files", "http://www.us.gov#terrorSuspect", "http://www.us.id#JaneDoe", nil)
	if got {
		t.Fatal("plain statement reified")
	}
	rs, err := match.Match(store, `(?s <http://www.us.gov#terrorSuspect> ?o)`, match.Options{Models: []string{"m"}})
	if err != nil || rs.Len() != 2 {
		t.Fatalf("match rows = %d, %v", rs.Len(), err)
	}
}

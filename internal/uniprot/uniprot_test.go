package uniprot

import (
	"strings"
	"testing"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

func TestGenerateExactCount(t *testing.T) {
	for _, n := range []int{24, 100, 1000, 10000} {
		ts, _, err := Generate(Config{Triples: n, Reified: n / 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != n {
			t.Fatalf("Generate(%d) emitted %d triples", n, len(ts))
		}
	}
	if _, _, err := Generate(Config{Triples: 5}); err == nil {
		t.Fatal("tiny dataset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _, err := Generate(Config{Triples: 2000, Reified: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := Generate(Config{Triples: 2000, Reified: 100, Seed: 42})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].T != b[i].T || a[i].Reify != b[i].Reify {
			t.Fatalf("triple %d differs between runs", i)
		}
	}
	c, _, _ := Generate(Config{Triples: 2000, Reified: 100, Seed: 43})
	same := true
	for i := range a {
		if a[i].T != c[i].T {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestProbeSubjectRows(t *testing.T) {
	ts, _, err := Generate(Config{Triples: 10000, Reified: 659, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	probe := 0
	var hasReifiedProbe, hasUnreifiedProbe bool
	for _, tr := range ts {
		if tr.T.Subject.Value != ProbeSubject {
			continue
		}
		probe++
		if tr.T.Object.Value == ProbeSeeAlso {
			if !tr.Reify {
				t.Error("probe seeAlso statement not flagged for reification")
			}
			hasReifiedProbe = true
		}
		if tr.T.Object.Value == NonReifiedProbeObject {
			if tr.Reify {
				t.Error("non-reified probe statement flagged")
			}
			hasUnreifiedProbe = true
		}
	}
	if probe != ProbeRows {
		t.Fatalf("probe subject has %d rows, want %d", probe, ProbeRows)
	}
	if !hasReifiedProbe || !hasUnreifiedProbe {
		t.Fatal("probe statements missing")
	}
}

func TestReifiedCountReached(t *testing.T) {
	_, reified, err := Generate(Config{Triples: 10000, Reified: 659, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reified != 659 {
		t.Fatalf("reified = %d, want 659", reified)
	}
	// Only seeAlso statements are flagged.
	ts, _, _ := Generate(Config{Triples: 5000, Reified: 200, Seed: 9})
	for _, tr := range ts {
		if tr.Reify && tr.T.Predicate.Value != SeeAlso {
			t.Fatalf("non-seeAlso statement flagged: %v", tr.T)
		}
	}
}

func TestPaperReifiedCount(t *testing.T) {
	if got := PaperReifiedCount(10_000); got != 659 {
		t.Errorf("10k = %d", got)
	}
	if got := PaperReifiedCount(5_000_000); got != 247_002 {
		t.Errorf("5M = %d", got)
	}
	mid := PaperReifiedCount(1_000_000)
	if mid <= 659 || mid >= 247_002 {
		t.Errorf("1M = %d not between endpoints", mid)
	}
	if small := PaperReifiedCount(1000); small < 0 {
		t.Errorf("1k = %d", small)
	}
}

func TestDataVariety(t *testing.T) {
	ts, _, err := Generate(Config{Triples: 20000, Reified: 500, Seed: 3, LongLiteralEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	var typed, plain, long, uris int
	preds := map[string]bool{}
	for _, tr := range ts {
		preds[tr.T.Predicate.Value] = true
		switch {
		case tr.T.Object.IsLong():
			long++
		case tr.T.Object.Datatype != "":
			typed++
		case tr.T.Object.Kind == rdfterm.Literal:
			plain++
		case tr.T.Object.Kind == rdfterm.URI:
			uris++
		}
	}
	if typed == 0 || plain == 0 || long == 0 || uris == 0 {
		t.Fatalf("variety missing: typed=%d plain=%d long=%d uris=%d", typed, plain, long, uris)
	}
	for _, want := range []string{rdfterm.RDFType, Mnemonic, Organism, Created, Sequence, SeeAlso, Mass} {
		if !preds[want] {
			t.Errorf("predicate %s never generated", want)
		}
	}
}

// The generated triples must serialize to valid N-Triples and parse back.
func TestGeneratedNTriplesRoundTrip(t *testing.T) {
	ts, _, err := Generate(Config{Triples: 500, Reified: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := ntriples.NewWriter(&sb)
	for _, tr := range ts {
		if err := w.Write(tr.T); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	back, err := ntriples.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip %d != %d", len(back), len(ts))
	}
	for i := range back {
		if back[i] != ts[i].T {
			t.Fatalf("triple %d differs after round trip", i)
		}
	}
}

func TestStreamEarlyError(t *testing.T) {
	calls := 0
	_, err := Stream(Config{Triples: 100, Seed: 1}, func(ntriples.Triple, bool) error {
		calls++
		if calls == 10 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("err = %v", err)
	}
	if calls != 10 {
		t.Fatalf("calls = %d", calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

package wal

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics instruments a Log (and optionally a GroupLog) against an obs
// registry. A nil *Metrics is the disabled state: every hook below is a
// nil-receiver no-op, so the uninstrumented hot path costs one branch
// and never calls time.Now. Attach with SetMetrics before the log is
// shared across goroutines.
type Metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	fsyncErrors *obs.Counter
	fsyncLat    *obs.Histogram
	resets      *obs.Counter

	groupFlushes    *obs.Counter
	groupFlushErrs  *obs.Counter
	groupCommitsPer *obs.Histogram
	groupBuffered   *obs.Gauge

	segments      *obs.Gauge
	diskBytes     *obs.Gauge
	rotations     *obs.Counter
	retired       *obs.Counter
	budgetRejects *obs.Counter
	softCrossings *obs.Counter
	tornTails     *obs.Counter

	events *obs.EventLog
}

// NewMetrics registers the WAL metric families on reg. Returns nil when
// reg is nil, which disables instrumentation end to end.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		appends:     reg.Counter("wal_appends_total", "records appended to the WAL"),
		appendBytes: reg.Counter("wal_append_bytes_total", "framed bytes appended to the WAL"),
		fsyncs:      reg.Counter("wal_fsyncs_total", "fsync calls on the WAL file"),
		fsyncErrors: reg.Counter("wal_fsync_errors_total", "failed fsync calls on the WAL file"),
		fsyncLat:    reg.Histogram("wal_fsync_seconds", "WAL fsync latency", obs.DurationBuckets),
		resets:      reg.Counter("wal_resets_total", "checkpoint truncations of the WAL"),

		groupFlushes:    reg.Counter("wal_group_flushes_total", "group-commit flushes (write + fsync batches)"),
		groupFlushErrs:  reg.Counter("wal_group_flush_errors_total", "group-commit flushes that failed and latched an error"),
		groupCommitsPer: reg.Histogram("wal_group_commits_per_flush", "commits acknowledged per group flush", obs.CountBuckets),
		groupBuffered:   reg.Gauge("wal_group_buffered_commits", "commits currently buffered in memory (max loss on crash)"),

		segments:      reg.Gauge("wal_segments", "retained WAL segment files (segmented mode)"),
		diskBytes:     reg.Gauge("wal_disk_bytes", "total bytes across retained WAL segments"),
		rotations:     reg.Counter("wal_rotations_total", "segment rotations (full segment sealed, fresh one opened)"),
		retired:       reg.Counter("wal_segments_retired_total", "segments deleted by checkpoint retention"),
		budgetRejects: reg.Counter("wal_budget_rejections_total", "appends rejected by the hard disk budget"),
		softCrossings: reg.Counter("wal_soft_watermark_total", "soft disk-watermark crossings (auto-checkpoint triggers)"),
		tornTails:     reg.Counter("wal_torn_tails_total", "torn tails detected and truncated during recovery"),

		events: reg.Events(),
	}
}

// OnTornTail records a torn-tail repair observed during recovery: the
// counter ticks and a structured event lands in the registry's event
// ring so operators learn a crash ate bytes. source names the log
// ("store.wal", a segment file, ...).
func (m *Metrics) OnTornTail(source string, validBytes int64, tailErr error) {
	if m == nil {
		return
	}
	m.tornTails.Inc()
	fields := map[string]string{
		"source":      source,
		"valid_bytes": strconv.FormatInt(validBytes, 10),
	}
	if tailErr != nil {
		fields["tail_error"] = tailErr.Error()
	}
	m.events.Emit("wal", "torn_tail", fields)
}

// startTimer returns now, or the zero time when metrics are disabled so
// the paired Histogram.ObserveSince is a no-op.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) onAppend(bytes int) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.appendBytes.Add(int64(bytes))
}

func (m *Metrics) onFsync(t0 time.Time) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncLat.ObserveSince(t0)
}

func (m *Metrics) onFsyncError() {
	if m == nil {
		return
	}
	m.fsyncErrors.Inc()
}

func (m *Metrics) onReset() {
	if m == nil {
		return
	}
	m.resets.Inc()
}

func (m *Metrics) onGroupFlush(commits int) {
	if m == nil {
		return
	}
	m.groupFlushes.Inc()
	m.groupCommitsPer.Observe(float64(commits))
	m.groupBuffered.Set(0)
}

func (m *Metrics) onGroupFlushError() {
	if m == nil {
		return
	}
	m.groupFlushErrs.Inc()
}

func (m *Metrics) setBuffered(n int) {
	if m == nil {
		return
	}
	m.groupBuffered.Set(int64(n))
}

func (m *Metrics) setDiskUsage(segments int, bytes int64) {
	if m == nil {
		return
	}
	m.segments.Set(int64(segments))
	m.diskBytes.Set(bytes)
}

func (m *Metrics) onRotate() {
	if m == nil {
		return
	}
	m.rotations.Inc()
}

func (m *Metrics) onRetire(n int) {
	if m == nil {
		return
	}
	m.retired.Add(int64(n))
}

func (m *Metrics) onBudgetReject() {
	if m == nil {
		return
	}
	m.budgetRejects.Inc()
}

func (m *Metrics) onSoftWatermark() {
	if m == nil {
		return
	}
	m.softCrossings.Inc()
	m.events.Emit("wal", "soft_watermark", nil)
}

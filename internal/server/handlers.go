package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/ndm"
	"repro/internal/rdfterm"
	"repro/internal/trace"
)

// Wire types. Terms travel as N-Triples-style strings in both
// directions: "<http://x#a>", "\"literal\"", "\"5\"^^<...#int>",
// "_:b0". See SERVING.md for the full request/response catalogue.

// errBodyBudget aborts encoding when the response exceeds
// MaxResultBytes; the handler maps it to 413.
var errBodyBudget = errors.New("server: response exceeds the result byte budget")

// capWriter buffers an encoded response under a hard byte cap, so the
// response assembly itself is the memory budget.
type capWriter struct {
	buf bytes.Buffer
	max int64
}

func (c *capWriter) Write(p []byte) (int, error) {
	if int64(c.buf.Len())+int64(len(p)) > c.max {
		return 0, errBodyBudget
	}
	return c.buf.Write(p)
}

// writeJSON encodes v under the byte budget and, only then, writes the
// response — so a blown budget still has a clean 413 status line.
func (s *Server) writeJSON(ctx context.Context, w http.ResponseWriter, v any) error {
	sp := trace.FromContext(ctx).Child("server.response_encode")
	defer sp.End()
	cw := &capWriter{max: s.cfg.MaxResultBytes}
	if err := json.NewEncoder(cw).Encode(v); err != nil {
		sp.SetError(err)
		if errors.Is(err, errBodyBudget) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBudget,
				msg: fmt.Sprintf("response exceeds the %d-byte result budget; narrow the query or lower limit", s.cfg.MaxResultBytes)}
		}
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	sp.SetInt("bytes", int64(cw.buf.Len()))
	_, err := w.Write(cw.buf.Bytes())
	return err
}

// decodeBody strictly decodes a JSON request body under the body cap.
func (s *Server) decodeBody(ctx context.Context, w http.ResponseWriter, r *http.Request, into any) error {
	sp := trace.FromContext(ctx).Child("server.body_decode")
	defer sp.End()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		sp.SetError(err)
		return errBadRequest("bad request body: %v", err)
	}
	return nil
}

// models resolves the request's model scope.
func (s *Server) models(req []string) ([]string, error) {
	if len(req) > 0 {
		return req, nil
	}
	if len(s.cfg.DefaultModels) > 0 {
		return s.cfg.DefaultModels, nil
	}
	return nil, errBadRequest("models required (no server default configured)")
}

// limit clamps a client row limit by the server cap.
func (s *Server) limit(req int) int {
	if req <= 0 || req > s.cfg.MaxRows {
		return s.cfg.MaxRows
	}
	return req
}

// ---- GET / and GET /healthz ----

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"service":   "rdfserve",
		"endpoints": []string{"POST /query", "GET /find", "POST /traverse", "POST /insert", "GET /healthz", "GET /debug/metrics"},
		"docs":      "SERVING.md",
	})
}

// handleHealthz is the load-balancer probe: 200 only when the store is
// Healthy and the server is not draining; 503 otherwise. (The richer
// supervisor payload is at /debug/healthz.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.Backend.Healthz()
	if s.draining.Load() {
		h.Healthy = false
		h.State = "Draining"
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// ---- POST /query ----

type queryRequest struct {
	// Query is the SDO_RDF_MATCH pattern list, e.g. "(?s ?p ?o)".
	Query string `json:"query"`
	// Models scopes the query (default: the server's configured models).
	Models []string `json:"models,omitempty"`
	// Filter is an optional boolean expression over the variables.
	Filter string `json:"filter,omitempty"`
	// Aliases adds prefix=namespace expansions for this query.
	Aliases  map[string]string `json:"aliases,omitempty"`
	Distinct bool              `json:"distinct,omitempty"`
	OrderBy  []string          `json:"order_by,omitempty"`
	// Limit caps result rows (clamped by the server's max).
	Limit int `json:"limit,omitempty"`
	// Trace returns the EXPLAIN-style execution record.
	Trace bool `json:"trace,omitempty"`
}

type queryResponse struct {
	Vars      []string   `json:"vars"`
	Rows      [][]string `json:"rows"`
	Count     int        `json:"count"`
	Truncated bool       `json:"truncated,omitempty"`
	Trace     *traceJSON `json:"trace,omitempty"`
}

type traceJSON struct {
	PlanOrder []int       `json:"plan_order"`
	Planner   string      `json:"planner,omitempty"`
	Stages    []stageJSON `json:"stages"`
	Rows      int         `json:"rows"`
	TotalUS   int64       `json:"total_us"`
}

type stageJSON struct {
	Index      int    `json:"index"`
	Pattern    string `json:"pattern"`
	In         int    `json:"in"`
	Candidates int    `json:"candidates"`
	Out        int    `json:"out"`
	// EstRows is the planner's estimated output cardinality for the
	// stage; omitted when the active planner does not estimate.
	EstRows    *float64 `json:"est_rows,omitempty"`
	DurationUS int64    `json:"duration_us"`
}

func (s *Server) handleQuery(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := s.decodeBody(ctx, w, r, &req); err != nil {
		return err
	}
	if req.Query == "" {
		return errBadRequest("query is required")
	}
	models, err := s.models(req.Models)
	if err != nil {
		return err
	}
	var aliases *rdfterm.AliasSet
	if len(req.Aliases) > 0 {
		aliases = rdfterm.Default()
		for p, ns := range req.Aliases {
			a := rdfterm.Alias{Prefix: p, Namespace: ns}
			if err := a.Validate(); err != nil {
				return errBadRequest("bad alias %q: %v", p, err)
			}
			aliases = aliases.With(a)
		}
	}
	opts := match.Options{
		Models:      models,
		Filter:      req.Filter,
		Aliases:     aliases,
		Distinct:    req.Distinct,
		OrderBy:     req.OrderBy,
		Limit:       s.limit(req.Limit),
		MaxBindings: s.cfg.MaxBindings,
	}
	var explain match.Trace
	if req.Trace {
		opts.Trace = &explain
	}
	rs, err := match.MatchContext(ctx, s.cfg.Backend.Store(), req.Query, opts)
	if err != nil {
		return queryError(err)
	}
	resp := queryResponse{Vars: rs.Vars, Rows: make([][]string, rs.Len()), Count: rs.Len(), Truncated: rs.Truncated}
	if resp.Vars == nil {
		resp.Vars = []string{}
	}
	for i, row := range rs.Rows {
		out := make([]string, len(row))
		for j, t := range row {
			out[j] = t.String()
		}
		resp.Rows[i] = out
	}
	if rs.Truncated {
		s.met.onTruncated()
	}
	if req.Trace {
		tj := &traceJSON{PlanOrder: explain.PlanOrder, Planner: explain.Planner, Rows: explain.Rows, TotalUS: explain.Total.Microseconds()}
		for _, st := range explain.Stages {
			sj := stageJSON{
				Index: st.Index, Pattern: st.Pattern, In: st.InBindings,
				Candidates: st.Candidates, Out: st.OutBindings, DurationUS: st.Duration.Microseconds(),
			}
			if st.EstRows >= 0 {
				est := st.EstRows
				sj.EstRows = &est
			}
			tj.Stages = append(tj.Stages, sj)
		}
		resp.Trace = tj
	}
	return s.writeJSON(ctx, w, resp)
}

// queryError classifies a match failure: parse and planning problems are
// the client's (400), budget and cancellation are typed upstream.
func queryError(err error) error {
	switch {
	case errors.Is(err, match.ErrBudget),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, core.ErrNoSuchModel):
		return err
	default:
		return errBadRequest("%v", err)
	}
}

// ---- GET /find ----

type tripleJSON struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
}

type findResponse struct {
	Triples   []tripleJSON `json:"triples"`
	Count     int          `json:"count"`
	Truncated bool         `json:"truncated,omitempty"`
}

func (s *Server) handleFind(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	models, err := s.models(q["model"])
	if err != nil {
		return err
	}
	var pat core.Pattern
	aliases := rdfterm.Default()
	if raw := q.Get("s"); raw != "" {
		t, err := rdfterm.ParseSubject(raw, aliases)
		if err != nil {
			return errBadRequest("bad s: %v", err)
		}
		pat.Subject = core.P(t)
	}
	if raw := q.Get("p"); raw != "" {
		t, err := rdfterm.ParsePredicate(raw, aliases)
		if err != nil {
			return errBadRequest("bad p: %v", err)
		}
		pat.Predicate = core.P(t)
	}
	if raw := q.Get("o"); raw != "" {
		t, err := rdfterm.ParseObject(raw, aliases)
		if err != nil {
			return errBadRequest("bad o: %v", err)
		}
		pat.Object = core.P(t)
	}
	limit := s.limit(atoiDefault(q.Get("limit"), 0))

	st := s.cfg.Backend.Store()
	found, err := st.FindModelsCtx(ctx, models, pat)
	if err != nil {
		return err
	}
	resp := findResponse{Triples: []tripleJSON{}}
	for _, ts := range found {
		if len(resp.Triples) == limit {
			resp.Truncated = true
			s.met.onTruncated()
			break
		}
		tr, err := ts.GetTriple()
		if err != nil {
			return fmt.Errorf("resolving triple %d: %w", ts.TID, err)
		}
		resp.Triples = append(resp.Triples, tripleJSON{
			S: tr.Subject.String(), P: tr.Property.String(), O: tr.Object.String(),
		})
	}
	resp.Count = len(resp.Triples)
	return s.writeJSON(ctx, w, resp)
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 1 << 30
		}
	}
	return n
}

// ---- POST /traverse ----

type traverseRequest struct {
	// Op is the NDM analysis: shortest_path, reachable, within_cost,
	// nearest.
	Op string `json:"op"`
	// Models scopes the network (default: the server's configured models).
	Models []string `json:"models,omitempty"`
	// Source and Target are N-Triples-style terms; Target only for
	// shortest_path.
	Source string `json:"source"`
	Target string `json:"target,omitempty"`
	// MaxCost bounds within_cost; K bounds nearest; MaxDepth bounds
	// reachable (0 = unbounded).
	MaxCost  float64 `json:"max_cost,omitempty"`
	K        int     `json:"k,omitempty"`
	MaxDepth int     `json:"max_depth,omitempty"`
	// Limit caps returned nodes (clamped by the server's max).
	Limit int `json:"limit,omitempty"`
}

type nodeCostJSON struct {
	Node string  `json:"node"`
	Cost float64 `json:"cost"`
}

type traverseResponse struct {
	Op    string `json:"op"`
	Found bool   `json:"found"`
	// Path fields (shortest_path).
	Cost float64  `json:"cost,omitempty"`
	Path []string `json:"path,omitempty"`
	// Node list (reachable / within_cost / nearest).
	Nodes     []nodeCostJSON `json:"nodes,omitempty"`
	Count     int            `json:"count"`
	Truncated bool           `json:"truncated,omitempty"`
}

func (s *Server) handleTraverse(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req traverseRequest
	if err := s.decodeBody(ctx, w, r, &req); err != nil {
		return err
	}
	models, err := s.models(req.Models)
	if err != nil {
		return err
	}
	st := s.cfg.Backend.Store()
	net, err := st.Network(models...)
	if err != nil {
		return err
	}
	g := net.WithContext(ctx)
	if req.Source == "" {
		return errBadRequest("source is required")
	}
	srcTerm, err := rdfterm.ParseObject(req.Source, rdfterm.Default())
	if err != nil {
		return errBadRequest("bad source: %v", err)
	}
	src, ok := net.NodeID(srcTerm)
	if !ok {
		return errBadRequest("source %s is not a node in the scoped models", req.Source)
	}
	limit := s.limit(req.Limit)

	term := func(node int64) (string, error) {
		t, err := net.NodeTerm(node)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}
	resp := traverseResponse{Op: req.Op}
	addNodes := func(ncs []ndm.NodeCost) error {
		for _, nc := range ncs {
			if len(resp.Nodes) == limit {
				resp.Truncated = true
				s.met.onTruncated()
				break
			}
			name, err := term(nc.Node)
			if err != nil {
				return err
			}
			resp.Nodes = append(resp.Nodes, nodeCostJSON{Node: name, Cost: nc.Cost})
		}
		resp.Found = true
		resp.Count = len(resp.Nodes)
		return nil
	}

	switch req.Op {
	case "shortest_path":
		if req.Target == "" {
			return errBadRequest("target is required for shortest_path")
		}
		dstTerm, err := rdfterm.ParseObject(req.Target, rdfterm.Default())
		if err != nil {
			return errBadRequest("bad target: %v", err)
		}
		dst, ok := net.NodeID(dstTerm)
		if !ok {
			return errBadRequest("target %s is not a node in the scoped models", req.Target)
		}
		path, err := ndm.ShortestPathCtx(ctx, g, src, dst)
		if errors.Is(err, ndm.ErrNoPath) {
			resp.Found = false
			return s.writeJSON(ctx, w, resp)
		}
		if err != nil {
			return err
		}
		resp.Found = true
		resp.Cost = path.Cost
		for _, node := range path.Nodes {
			name, err := term(node)
			if err != nil {
				return err
			}
			resp.Path = append(resp.Path, name)
		}
		resp.Count = len(resp.Path)
	case "within_cost":
		ncs, err := ndm.WithinCostCtx(ctx, g, src, req.MaxCost)
		if err != nil {
			return err
		}
		if err := addNodes(ncs); err != nil {
			return err
		}
	case "nearest":
		k := req.K
		if k <= 0 || k > limit {
			k = limit
		}
		ncs, err := ndm.NearestNeighborsCtx(ctx, g, src, k)
		if err != nil {
			return err
		}
		if err := addNodes(ncs); err != nil {
			return err
		}
	case "reachable":
		depth := req.MaxDepth
		if depth <= 0 {
			depth = -1 // wire 0/absent means unbounded; ndm uses negative for that
		}
		nodes, err := ndm.ReachableCtx(ctx, g, src, depth)
		if err != nil {
			return err
		}
		ncs := make([]ndm.NodeCost, len(nodes))
		for i, n := range nodes {
			ncs[i] = ndm.NodeCost{Node: n}
		}
		if err := addNodes(ncs); err != nil {
			return err
		}
	default:
		return errBadRequest("unknown op %q (want shortest_path, within_cost, nearest, or reachable)", req.Op)
	}
	return s.writeJSON(ctx, w, resp)
}

// ---- POST /insert ----

type insertRequest struct {
	Model string `json:"model"`
	// CreateModel creates the model if it does not exist.
	CreateModel bool         `json:"create_model,omitempty"`
	Triples     []tripleJSON `json:"triples"`
}

type insertResponse struct {
	Inserted int `json:"inserted"`
	NewLinks int `json:"new_links"`
}

func (s *Server) handleInsert(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req insertRequest
	if err := s.decodeBody(ctx, w, r, &req); err != nil {
		return err
	}
	if req.Model == "" {
		return errBadRequest("model is required")
	}
	if len(req.Triples) == 0 {
		return errBadRequest("triples is empty")
	}
	if len(req.Triples) > s.cfg.MaxBatch {
		return &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBudget,
			msg: fmt.Sprintf("batch of %d exceeds the %d-triple cap", len(req.Triples), s.cfg.MaxBatch)}
	}
	aliases := rdfterm.Default()
	batch := make([]core.BatchTriple, len(req.Triples))
	for i, t := range req.Triples {
		sub, err := rdfterm.ParseSubject(t.S, aliases)
		if err != nil {
			return errBadRequest("triple %d: bad s: %v", i, err)
		}
		pred, err := rdfterm.ParsePredicate(t.P, aliases)
		if err != nil {
			return errBadRequest("triple %d: bad p: %v", i, err)
		}
		obj, err := rdfterm.ParseObject(t.O, aliases)
		if err != nil {
			return errBadRequest("triple %d: bad o: %v", i, err)
		}
		batch[i] = core.BatchTriple{Subject: sub, Predicate: pred, Object: obj}
	}
	// The deadline covers the admission wait and parse; the mutation
	// itself is not cancellable mid-batch (the WAL commit is atomic),
	// so check once more before paying for it.
	if err := ctx.Err(); err != nil {
		return err
	}
	var res core.BatchResult
	err := s.cfg.Backend.Mutate(func(st *core.Store) error {
		if req.CreateModel {
			if _, err := st.GetModelID(req.Model); errors.Is(err, core.ErrNoSuchModel) {
				if _, err := st.CreateRDFModel(req.Model, "", ""); err != nil {
					return err
				}
			}
		}
		var err error
		res, err = st.InsertBatchCtx(ctx, req.Model, batch)
		return err
	})
	if err != nil {
		return err
	}
	return s.writeJSON(ctx, w, insertResponse{Inserted: len(res.Triples), NewLinks: res.NewLinks})
}

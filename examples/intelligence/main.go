// Intelligence reproduces the paper's Intelligence Community scenario end
// to end (Figures 2, 6, 7, 8):
//
//   - three agencies (CIA, DHS, FBI) each manage their own RDF model in
//     separate application tables, all sharing the central schema;
//   - the repeated triple shares value IDs across models (Figure 6);
//   - MI5's assertion reifies a CIA triple via a DBUri (Figure 7);
//   - Interpol asserts an *implied* statement (§5.2);
//   - the intel_rb rulebase plus the RDFS rulebase are compiled into a
//     rules index, and SDO_RDF_MATCH reasons across all three models,
//     joined with the IC address table to produce the paper's Figure 8
//     terror watch list.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/match"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

func main() {
	store := core.New()
	govAliases := []rdfterm.Alias{
		{Prefix: "gov", Namespace: "http://www.us.gov#"},
		{Prefix: "id", Namespace: "http://www.us.id#"},
	}
	aliases := rdfterm.Default().With(govAliases...)

	// Each agency has its own application table and model (Figure 2).
	appDB := reldb.NewDatabase("IC")
	tables := map[string]*core.ApplicationTable{}
	for _, agency := range []string{"cia", "dhs", "fbi"} {
		at, err := core.CreateApplicationTable(appDB, store, agency+"data",
			reldb.Column{Name: "ID", Kind: reldb.KindInt})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := store.CreateRDFModel(agency, agency+"data", "triple"); err != nil {
			log.Fatal(err)
		}
		tables[agency] = at
	}

	// Figure 2 data.
	type row struct {
		agency, s, p, o string
	}
	data := []row{
		{"cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe"},
		{"dhs", "id:JimDoe", "gov:terrorAction", "bombing"},
		{"dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000"},
		{"fbi", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
	}
	var ciaJohnDoe core.TripleS
	for i, r := range data {
		ts, err := tables[r.agency].InsertTriple(
			[]reldb.Value{reldb.Int(int64(i + 1))}, r.agency, r.s, r.p, r.o, aliases)
		if err != nil {
			log.Fatal(err)
		}
		if r.agency == "cia" && r.o == "id:JohnDoe" {
			ciaJohnDoe = ts
		}
	}

	// Figure 6: the application tables hold only ID objects; the repeated
	// triple shares S/P/O value IDs across agencies.
	fmt.Println("Figure 6 — SDO_RDF_TRIPLE_S objects in the application tables:")
	for _, agency := range []string{"cia", "dhs", "fbi"} {
		fmt.Printf("%s TRIPLE (RDF_T_ID, RDF_M_ID, RDF_S_ID, RDF_P_ID, RDF_O_ID)\n", upper(agency))
		tables[agency].Scan(func(_ reldb.RowID, _ []reldb.Value, ts core.TripleS) bool {
			fmt.Printf("  %s\n", ts)
			return true
		})
	}

	// Figure 7: reify the CIA triple and assert MI5 as its source.
	if _, err := store.AssertAboutTriple("cia", "gov:MI5", "gov:source", ciaJohnDoe.TID, aliases); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 7 — reified statement %s:\n", core.DBUri(ciaJohnDoe.TID))
	asserts, err := store.Assertions("cia", ciaJohnDoe.TID)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range asserts {
		fmt.Printf("  <%s, %s, R>\n", aliases.Compact(a.Subject.Value), aliases.Compact(a.Property.Value))
	}

	// §5.2: Interpol asserts the implied statement about JohnDoeJr.
	if _, err := store.AssertImplied("cia", "gov:Interpol", "gov:source",
		"gov:files", "gov:terrorSuspect", "id:JohnDoeJr", aliases); err != nil {
		log.Fatal(err)
	}
	implied, _, err := store.IsTriple("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoeJr", aliases)
	if err != nil {
		log.Fatal(err)
	}
	info, err := store.LinkInfo(implied.TID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n§5.2 — implied statement about id:JohnDoeJr stored with CONTEXT=%s\n", info.Context)

	// Figure 8: rulebase, rules index, inference, and the address join.
	catalog := inference.NewCatalog(store)
	if _, err := catalog.CreateRulebase("intel_rb"); err != nil {
		log.Fatal(err)
	}
	if err := catalog.AddRule("intel_rb", inference.Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases,
	}); err != nil {
		log.Fatal(err)
	}
	ix, err := catalog.CreateRulesIndex("rdfs_rix_intel",
		[]string{"cia", "dhs", "fbi"},
		[]string{inference.RDFSRulebaseName, "intel_rb"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 8 — rules index %q precomputed %d inferred triples\n", ix.Name(), ix.InferredCount())

	// The IC address table (ic.address in the paper's SQL).
	address, err := appDB.CreateTable(reldb.NewSchema("address",
		reldb.Column{Name: "NAME", Kind: reldb.KindString},
		reldb.Column{Name: "ADDRESS", Kind: reldb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range [][2]string{
		{"http://www.us.id#JohnDoe", "Brooklyn, NY"},
		{"http://www.us.id#JaneDoe", "Brooklyn, NY"},
		{"http://www.us.id#JimDoe", "Trenton, NJ"},
		{"http://www.us.id#Innocent", "Nowhere, KS"},
	} {
		if _, err := address.Insert(reldb.Row{reldb.String_(r[0]), reldb.String_(r[1])}); err != nil {
			log.Fatal(err)
		}
	}

	// SELECT a.name, b.address FROM TABLE(SDO_RDF_MATCH(...)) a, ic.address b
	// WHERE a.name = b.name;
	rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?name)`, match.Options{
		Models:    []string{"cia", "dhs", "fbi"},
		Rulebases: []string{inference.RDFSRulebaseName, "intel_rb"},
		Resolver:  catalog,
		Aliases:   aliases,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Deduplicate suspects (the repeated triple appears per model), then
	// join to the address table with the executor.
	seen := map[string]bool{}
	var matchRows []reldb.Row
	for i := 0; i < rs.Len(); i++ {
		name, _ := rs.Get(i, "name")
		if !seen[name.Value] {
			seen[name.Value] = true
			matchRows = append(matchRows, reldb.Row{reldb.String_(name.Value)})
		}
	}
	join := reldb.NewHashJoin(
		reldb.NewSliceIter(matchRows), reldb.ColKey(0),
		reldb.NewTableScan(address), reldb.ColKey(0),
	)
	var out []reldb.Row
	for {
		r, ok := join.Next()
		if !ok {
			break
		}
		out = append(out, reldb.Row{
			reldb.String_(aliases.Compact(r[0].Str())),
			r[2],
		})
	}
	fmt.Println()
	fmt.Print(reldb.FormatRows([]string{"TERROR_WATCH_LIST", "LOCATION"}, out))
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

package match

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

// buildJoinStore loads a model whose 3-pattern join explodes
// combinatorially: three all-to-all x:p layers of width w (so the
// intermediate binding sets grow as w², then w³), padded with filler
// triples to the requested total size.
func buildJoinStore(t testing.TB, w, total int) *core.Store {
	t.Helper()
	s := core.New()
	if _, err := s.CreateRDFModel("big", "", ""); err != nil {
		t.Fatal(err)
	}
	uri := func(layer, i int) rdfterm.Term {
		return rdfterm.NewURI(fmt.Sprintf("http://x#n%d_%d", layer, i))
	}
	p := rdfterm.NewURI("http://x#p")
	var batch []core.BatchTriple
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := s.InsertBatch("big", batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	n := 0
	for layer := 0; layer < 3; layer++ {
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				batch = append(batch, core.BatchTriple{Subject: uri(layer, i), Predicate: p, Object: uri(layer+1, j)})
				n++
				if len(batch) == 10000 {
					flush()
				}
			}
		}
	}
	filler := rdfterm.NewURI("http://x#filler")
	for ; n < total; n++ {
		batch = append(batch, core.BatchTriple{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://x#f%d", n%512)),
			Predicate: filler,
			Object:    rdfterm.NewURI(fmt.Sprintf("http://x#v%d", n)),
		})
		if len(batch) == 10000 {
			flush()
		}
	}
	flush()
	return s
}

// cancelBudget is how long after cancellation a query may keep running
// before the test fails. Cancellation polls every 256 bindings/rows, so
// the true latency is sub-millisecond on an idle machine — but CI boxes
// are shared and the race detector slows everything severalfold, so the
// budget asserts "prompt", not "instant". (The 100–200ms budgets this
// replaces were flaky under -race; see CHANGES.md PR 5.)
func cancelBudget() time.Duration {
	if raceEnabled {
		return 5 * time.Second
	}
	return time.Second
}

// The acceptance bar for cancellable queries: a join over a 100k-triple
// model returns promptly after context cancellation (cancelBudget), and
// the store is immediately writable afterwards (no leaked read lock).
func TestMatchContextCancelsLargeJoin(t *testing.T) {
	s := buildJoinStore(t, 30, 100000)
	query := "(?a <http://x#p> ?b) (?b <http://x#p> ?c) (?c <http://x#p> ?d)"

	// Sanity: the query itself is valid — a narrowed variant completes.
	narrow, err := Match(s, "(<http://x#n0_0> <http://x#p> ?b) (?b <http://x#p> ?c)", Options{Models: []string{"big"}})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Len() != 30*30 {
		t.Fatalf("narrowed join returned %d rows, want %d", narrow.Len(), 30*30)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := MatchContext(ctx, s, query, Options{Models: []string{"big"}})
		done <- err
	}()
	// Let the join get going, then cancel. The full join materializes
	// ~w³ = 27k bindings through repeated index scans, far more than it
	// can finish in 30ms.
	time.Sleep(30 * time.Millisecond)
	cancel()
	cancelledAt := time.Now()
	select {
	case err := <-done:
		if d := time.Since(cancelledAt); d > cancelBudget() {
			t.Fatalf("MatchContext returned %v after cancellation (budget %v)", d, cancelBudget())
		}
		if err == nil {
			t.Skip("join finished before cancellation on this machine; nothing to assert")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("MatchContext error = %v, want context.Canceled in chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MatchContext did not return after cancellation")
	}

	// No lock leak: a write must complete promptly.
	writeDone := make(chan error, 1)
	go func() {
		a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
		_, err := s.NewTripleS("big", "x:w", "x:p2", "x:w2", a)
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("write blocked after cancelled MatchContext: read lock leaked")
	}
}

func TestMatchContextDeadline(t *testing.T) {
	s := buildJoinStore(t, 12, 5000)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	query := "(?a <http://x#p> ?b) (?b <http://x#p> ?c) (?c <http://x#p> ?d)"
	start := time.Now()
	_, err := MatchContext(ctx, s, query, Options{Models: []string{"big"}})
	if err == nil {
		t.Skip("join finished inside the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MatchContext error = %v, want DeadlineExceeded in chain", err)
	}
	if d := time.Since(start); d > cancelBudget() {
		t.Fatalf("MatchContext overran its 5ms deadline by %v (budget %v)", d, cancelBudget())
	}
}

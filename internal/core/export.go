package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// ExportModel serializes every triple of a model as N-Triples, in LINK_ID
// order. Reification rows are exported with their DBUri subjects verbatim;
// ExpandReification rewrites them to portable reification quads instead,
// so the output can be reloaded into a store whose LINK_IDs differ.
type ExportOptions struct {
	// ExpandReification replaces each <DBUri, rdf:type, rdf:Statement> row
	// with the four-triple reification quad over a generated blank node,
	// and rewrites assertions referencing the DBUri to that blank node —
	// the inverse of the reify.Loader fold.
	ExpandReification bool
}

// ExportModel writes the model to w.
func (s *Store) ExportModel(model string, w io.Writer, opts ExportOptions) error {
	return s.ExportModelCtx(context.Background(), model, w, opts)
}

// ExportModelCtx is ExportModel with cancellation: both the locked link
// scan and the per-triple serialization loop poll ctx, so a long export
// can be aborted by deadline or cancel without finishing the pass.
func (s *Store) ExportModelCtx(ctx context.Context, model string, w io.Writer, opts ExportOptions) error {
	// Snapshot the link set under the read lock, then release it: the
	// per-triple value lookups below take their own read locks, and
	// RWMutex read locks must not nest.
	s.mu.RLock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		s.mu.RUnlock()
		return err
	}
	all, err := s.findModelLocked(ctx, mid, Pattern{})
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	out := ntriples.NewWriter(w)

	// Pass 1 (expansion only): map reified LINK_IDs to fresh blank nodes.
	blankOf := map[int64]rdfterm.Term{}
	if opts.ExpandReification {
		n := 0
		for _, ts := range all {
			tr, err := ts.GetTriple()
			if err != nil {
				return err
			}
			if linkID, ok := reificationRow(tr); ok {
				n++
				blankOf[linkID] = rdfterm.NewBlank("reif" + itoa64(int64(n)))
			}
		}
	}

	rewrite := func(t rdfterm.Term) rdfterm.Term {
		if !opts.ExpandReification || t.Kind != rdfterm.URI {
			return t
		}
		if id, ok := ParseDBUri(t.Value); ok {
			if b, ok := blankOf[id]; ok {
				return b
			}
		}
		return t
	}

	for i, ts := range all {
		if i%cancelEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: export: %w", err)
			}
		}
		tr, err := ts.GetTriple()
		if err != nil {
			return err
		}
		if opts.ExpandReification {
			if linkID, ok := reificationRow(tr); ok {
				// Emit the full quad instead of the folded row.
				base, err := s.GetTripleByID(linkID)
				if err != nil {
					return err
				}
				r := blankOf[linkID]
				quad := []ntriples.Triple{
					{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFType), Object: rdfterm.NewURI(rdfterm.RDFStatement)},
					{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFSubject), Object: base.Subject},
					{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFPredicate), Object: base.Property},
					{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFObject), Object: base.Object},
				}
				for _, q := range quad {
					if err := out.Write(q); err != nil {
						return err
					}
				}
				continue
			}
		}
		if err := out.Write(ntriples.Triple{
			Subject:   rewrite(tr.Subject),
			Predicate: tr.Property,
			Object:    rewrite(tr.Object),
		}); err != nil {
			return err
		}
	}
	return out.Flush()
}

// reificationRow reports whether a triple is a streamlined reification row
// <DBUri, rdf:type, rdf:Statement>, returning the reified LINK_ID.
func reificationRow(tr Triple) (int64, bool) {
	if tr.Property.Value != rdfterm.RDFType || tr.Object.Value != rdfterm.RDFStatement {
		return 0, false
	}
	if tr.Subject.Kind != rdfterm.URI {
		return 0, false
	}
	return ParseDBUri(tr.Subject.Value)
}

func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Statistics summarizes a model's storage (for tooling and tests).
type Statistics struct {
	Triples    int // rdf_link$ rows in the model
	Reified    int // reification rows
	Direct     int // CONTEXT = D
	Indirect   int // CONTEXT = I
	ByLinkType map[string]int
}

// ModelStatistics computes storage statistics for one model.
func (s *Store) ModelStatistics(model string) (Statistics, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return Statistics{}, err
	}
	stats := Statistics{ByLinkType: map[string]int{}}
	// A link row whose value IDs do not resolve is corruption; surface it
	// instead of silently under-counting reified triples.
	var scanErr error
	lookup := func(id int64) (rdfterm.Term, bool) {
		t, err := s.getValueLocked(id)
		if err != nil {
			scanErr = fmt.Errorf("core: model %q statistics: link VALUE_ID %d unreadable: %w", model, id, err)
			return rdfterm.Term{}, false
		}
		return t, true
	}
	err = s.links.ScanPartition(mid, func(_ reldb.RowID, r reldb.Row) bool {
		stats.Triples++
		stats.ByLinkType[r[lcLinkType].Str()]++
		switch r[lcContext].Str() {
		case ContextDirect:
			stats.Direct++
		case ContextIndirect:
			stats.Indirect++
		}
		if r[lcReifLink].Str() == "Y" {
			// Reification rows specifically: predicate rdf:type, object
			// rdf:Statement, subject a DBUri.
			sub, ok := lookup(r[lcStartNodeID].Int64())
			if !ok {
				return false
			}
			if _, isDBUri := ParseDBUri(sub.Value); isDBUri {
				prop, ok := lookup(r[lcPValueID].Int64())
				if !ok {
					return false
				}
				if prop.Value == rdfterm.RDFType {
					obj, ok := lookup(r[lcEndNodeID].Int64())
					if !ok {
						return false
					}
					if obj.Value == rdfterm.RDFStatement {
						stats.Reified++
					}
				}
			}
		}
		return true
	})
	if scanErr != nil {
		return Statistics{}, scanErr
	}
	return stats, err
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/jena"
	"repro/internal/rdfterm"
	"repro/internal/uniprot"
)

// This file implements the paper's experiments (§7). Each Run* function
// measures one experiment over prebuilt datasets and returns the raw
// numbers; the Table builders render them in the paper's layout.

// ExpIResult holds Experiment I measurements (§7.1.3, Figure 9): member
// functions vs. flat storage tables.
type ExpIResult struct {
	Triples      int
	MemberFns    time.Duration
	FlatTables   time.Duration
	RowsReturned int
}

// RunExperimentI times the subject-lookup query through the object's
// member functions (function-based index → GET_TRIPLE) and through the
// flat storage tables (three-way value join).
func RunExperimentI(d *OracleDataset) (ExpIResult, error) {
	var rows []core.Triple
	var err error
	member := Time(func() {
		rows, err = d.App.QueryBySubject(d.SubIdx, uniprot.ProbeSubject)
	})
	if err != nil {
		return ExpIResult{}, err
	}
	memberRows := len(rows)
	flat := Time(func() {
		rows, err = d.Store.FlatQueryBySubject(d.Model, uniprot.ProbeSubject)
	})
	if err != nil {
		return ExpIResult{}, err
	}
	if len(rows) != memberRows {
		return ExpIResult{}, fmt.Errorf("bench: member functions returned %d rows, flat tables %d", memberRows, len(rows))
	}
	return ExpIResult{
		Triples: d.Triples, MemberFns: member, FlatTables: flat, RowsReturned: memberRows,
	}, nil
}

// ExpIIResult holds Experiment II / Table 1 measurements: Jena2 vs. RDF
// storage objects on the subject query (Figure 10).
type ExpIIResult struct {
	Triples      int
	Jena2        time.Duration
	RDFObjects   time.Duration
	RowsReturned int
}

// RunExperimentII times the Figure 10 query on both systems.
func RunExperimentII(o *OracleDataset, j *Jena2Dataset) (ExpIIResult, error) {
	sub := rdfterm.NewURI(uniprot.ProbeSubject)
	var jRows []jena.Statement
	var jErr error
	jena2 := Time(func() {
		jRows, jErr = j.Store.Find(j.Model, &sub, nil, nil)
	})
	if jErr != nil {
		return ExpIIResult{}, jErr
	}
	var oRows []core.Triple
	var oErr error
	rdf := Time(func() {
		oRows, oErr = o.App.QueryBySubject(o.SubIdx, uniprot.ProbeSubject)
	})
	if oErr != nil {
		return ExpIIResult{}, oErr
	}
	if len(jRows) != len(oRows) {
		return ExpIIResult{}, fmt.Errorf("bench: Jena2 returned %d rows, RDF objects %d", len(jRows), len(oRows))
	}
	return ExpIIResult{
		Triples: o.Triples, Jena2: jena2, RDFObjects: rdf, RowsReturned: len(oRows),
	}, nil
}

// ExpIIIResult holds Experiment III / Table 2 measurements: IS_REIFIED on
// both systems, for a true and a false probe (Figure 11).
type ExpIIIResult struct {
	Triples    int
	Reified    int
	Jena2True  time.Duration
	RDFTrue    time.Duration
	Jena2False time.Duration
	RDFFalse   time.Duration
	// Jena2Skipped marks an RDF-only run (benchrepro -systems rdf).
	Jena2Skipped bool
}

// RunExperimentIII times IS_REIFIED on both systems.
func RunExperimentIII(o *OracleDataset, j *Jena2Dataset) (ExpIIIResult, error) {
	probeTrue, probeFalse := ProbeStatement(), NonReifiedStatement()
	var got bool
	var err error

	jena2True := Time(func() { got, err = j.Store.IsReified(j.Model, probeTrue) })
	if err != nil || !got {
		return ExpIIIResult{}, fmt.Errorf("bench: Jena2 IsReified(true probe) = %v, %v", got, err)
	}
	jena2False := Time(func() { got, err = j.Store.IsReified(j.Model, probeFalse) })
	if err != nil || got {
		return ExpIIIResult{}, fmt.Errorf("bench: Jena2 IsReified(false probe) = %v, %v", got, err)
	}

	rdfTrue := Time(func() {
		got, err = o.Store.IsReified(o.Model, uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.ProbeSeeAlso, nil)
	})
	if err != nil || !got {
		return ExpIIIResult{}, fmt.Errorf("bench: RDF IsReified(true probe) = %v, %v", got, err)
	}
	rdfFalse := Time(func() {
		got, err = o.Store.IsReified(o.Model, uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.NonReifiedProbeObject, nil)
	})
	if err != nil || got {
		return ExpIIIResult{}, fmt.Errorf("bench: RDF IsReified(false probe) = %v, %v", got, err)
	}
	return ExpIIIResult{
		Triples: o.Triples, Reified: o.Reified,
		Jena2True: jena2True, RDFTrue: rdfTrue,
		Jena2False: jena2False, RDFFalse: rdfFalse,
	}, nil
}

// RunExperimentIIIRDFOnly measures the RDF-objects side of Table 2 alone —
// used for dataset sizes where holding both systems in memory is not
// possible (the Jena2 columns are then reported at the sizes both fit).
func RunExperimentIIIRDFOnly(o *OracleDataset) (ExpIIIResult, error) {
	var got bool
	var err error
	rdfTrue := Time(func() {
		got, err = o.Store.IsReified(o.Model, uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.ProbeSeeAlso, nil)
	})
	if err != nil || !got {
		return ExpIIIResult{}, fmt.Errorf("bench: RDF IsReified(true probe) = %v, %v", got, err)
	}
	rdfFalse := Time(func() {
		got, err = o.Store.IsReified(o.Model, uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.NonReifiedProbeObject, nil)
	})
	if err != nil || got {
		return ExpIIIResult{}, fmt.Errorf("bench: RDF IsReified(false probe) = %v, %v", got, err)
	}
	return ExpIIIResult{
		Triples: o.Triples, Reified: o.Reified,
		RDFTrue: rdfTrue, RDFFalse: rdfFalse,
		Jena2Skipped: true,
	}, nil
}

// ReifStorageResult holds the §7.3 storage comparison: rows stored per N
// reifications under the streamlined scheme vs. the naïve quad, plus
// IS_REIFIED latency under both.
type ReifStorageResult struct {
	Reifications int
	OracleRows   int
	QuadRows     int
	Ratio        float64
	OracleLookup time.Duration
	QuadLookup   time.Duration
}

// RunReificationStorage measures §7.3 on a fresh corpus of n base triples,
// all reified.
func RunReificationStorage(n int, seed int64) (ReifStorageResult, error) {
	// Oracle scheme.
	st := core.New()
	if _, err := st.CreateRDFModel("m", "", ""); err != nil {
		return ReifStorageResult{}, err
	}
	var firstTID int64
	for i := 0; i < n; i++ {
		ts, err := st.InsertTerms("m",
			rdfterm.NewURI(fmt.Sprintf("http://s/%d", i)),
			rdfterm.NewURI("http://p"),
			rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)))
		if err != nil {
			return ReifStorageResult{}, err
		}
		if i == 0 {
			firstTID = ts.TID
		}
	}
	base, _ := st.NumTriples("m")
	for tid := firstTID; tid < firstTID+int64(n); tid++ {
		if _, err := st.Reify("m", tid); err != nil {
			return ReifStorageResult{}, err
		}
	}
	after, _ := st.NumTriples("m")
	oracleRows := after - base

	// Quad scheme on the Jena2 baseline.
	js := jena.NewJena2Store()
	if err := js.CreateModel("m"); err != nil {
		return ReifStorageResult{}, err
	}
	q := jena.NewQuadReifier(js, "m")
	var firstStmt jena.Statement
	for i := 0; i < n; i++ {
		stm := jena.Statement{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://s/%d", i)),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)),
		}
		if i == 0 {
			firstStmt = stm
		}
		if err := js.Add("m", stm); err != nil {
			return ReifStorageResult{}, err
		}
	}
	jBase, _ := js.Len("m")
	for i := 0; i < n; i++ {
		stm := jena.Statement{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://s/%d", i)),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)),
		}
		if _, err := q.Reify(stm); err != nil {
			return ReifStorageResult{}, err
		}
	}
	jAfter, _ := js.Len("m")
	quadRows := jAfter - jBase

	// Lookup latency under both schemes.
	var ok bool
	var err error
	oracleLookup := Time(func() {
		ok, err = st.IsReified("m", "http://s/0", "http://p", "http://o/0", nil)
	})
	if err != nil || !ok {
		return ReifStorageResult{}, fmt.Errorf("bench: oracle IsReified = %v, %v", ok, err)
	}
	quadLookup := Time(func() { ok, err = q.IsReified(firstStmt) })
	if err != nil || !ok {
		return ReifStorageResult{}, fmt.Errorf("bench: quad IsReified = %v, %v", ok, err)
	}
	_ = seed
	return ReifStorageResult{
		Reifications: n,
		OracleRows:   oracleRows,
		QuadRows:     quadRows,
		Ratio:        float64(oracleRows) / float64(quadRows),
		OracleLookup: oracleLookup,
		QuadLookup:   quadLookup,
	}, nil
}

// IndexAblationResult holds the §7.2 indexing comparison: the subject
// query with and without the function-based index.
type IndexAblationResult struct {
	Triples   int
	Indexed   time.Duration
	Unindexed time.Duration
}

// RunIndexAblation measures §7.2 on a prebuilt dataset.
func RunIndexAblation(d *OracleDataset) (IndexAblationResult, error) {
	var rows []core.Triple
	var err error
	indexed := Time(func() { rows, err = d.App.QueryBySubject(d.SubIdx, uniprot.ProbeSubject) })
	if err != nil {
		return IndexAblationResult{}, err
	}
	want := len(rows)
	unindexed := Time(func() { rows, err = d.App.UnindexedQueryBySubject(uniprot.ProbeSubject) })
	if err != nil {
		return IndexAblationResult{}, err
	}
	if len(rows) != want {
		return IndexAblationResult{}, fmt.Errorf("bench: unindexed returned %d rows, indexed %d", len(rows), want)
	}
	return IndexAblationResult{Triples: d.Triples, Indexed: indexed, Unindexed: unindexed}, nil
}

// --- table builders ---

// TableExpI renders Experiment I results.
func TableExpI(results []ExpIResult) *Table {
	t := &Table{
		Title:   "Experiment I: flat storage tables versus member functions (mean of 10 warm trials)",
		Headers: []string{"Triples", "Member fns (sec)", "Flat tables (sec)", "Rows", "member µs", "flat µs"},
	}
	for _, r := range results {
		t.Add(fmtTriples(r.Triples), Seconds(r.MemberFns), Seconds(r.FlatTables),
			fmt.Sprintf("%d", r.RowsReturned), micros(r.MemberFns), micros(r.FlatTables))
	}
	return t
}

// TableExpII renders Table 1.
func TableExpII(results []ExpIIResult) *Table {
	t := &Table{
		Title:   "Table 1. Query times on the UniProt datasets",
		Headers: []string{"Triples", "Jena2 (sec)", "RDF objects (sec)", "Rows", "Jena2 µs", "RDF µs"},
	}
	for _, r := range results {
		t.Add(fmtTriples(r.Triples), Seconds(r.Jena2), Seconds(r.RDFObjects),
			fmt.Sprintf("%d", r.RowsReturned), micros(r.Jena2), micros(r.RDFObjects))
	}
	return t
}

// TableExpIII renders Table 2.
func TableExpIII(results []ExpIIIResult) *Table {
	t := &Table{
		Title:   "Table 2. IS_REIFIED() query times on the UniProt datasets",
		Headers: []string{"Triples/Stmts", "Jena2 (sec)", "RDF objects (sec)", "Res", "Jena2 µs", "RDF µs"},
	}
	for _, r := range results {
		label := fmt.Sprintf("%s /%d", fmtTriples(r.Triples), r.Reified)
		jt, jf, jtu, jfu := Seconds(r.Jena2True), Seconds(r.Jena2False), micros(r.Jena2True), micros(r.Jena2False)
		if r.Jena2Skipped {
			jt, jf, jtu, jfu = "-", "-", "-", "-"
		}
		t.Add(label, jt, Seconds(r.RDFTrue), "true", jtu, micros(r.RDFTrue))
		t.Add(label, jf, Seconds(r.RDFFalse), "false", jfu, micros(r.RDFFalse))
	}
	return t
}

// TableReifStorage renders §7.3.
func TableReifStorage(r ReifStorageResult) *Table {
	t := &Table{
		Title:   "§7.3 Reification storage: streamlined DBUri scheme versus naive quad",
		Headers: []string{"Reifications", "Oracle rows", "Quad rows", "Ratio", "Oracle lookup", "Quad lookup"},
	}
	t.Add(fmt.Sprintf("%d", r.Reifications),
		fmt.Sprintf("%d", r.OracleRows),
		fmt.Sprintf("%d", r.QuadRows),
		fmt.Sprintf("%.2f", r.Ratio),
		r.OracleLookup.String(),
		r.QuadLookup.String())
	return t
}

// TableIndexAblation renders §7.2.
func TableIndexAblation(results []IndexAblationResult) *Table {
	t := &Table{
		Title:   "§7.2 Function-based indexing: subject query with and without the index",
		Headers: []string{"Triples", "Indexed", "Unindexed"},
	}
	for _, r := range results {
		t.Add(fmtTriples(r.Triples), r.Indexed.String(), r.Unindexed.String())
	}
	return t
}

// micros renders a duration in whole microseconds for the supplementary
// columns (the paper's 0.00 format hides sub-hundredth differences).
func micros(d time.Duration) string {
	return fmt.Sprintf("%d", d.Microseconds())
}

func fmtTriples(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%d M", n/1_000_000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%d k", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

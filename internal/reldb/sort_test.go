package reldb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rowsOf(vals ...int64) []Row {
	out := make([]Row, len(vals))
	for i, v := range vals {
		out[i] = Row{Int(v), String_("x")}
	}
	return out
}

func TestSortAscending(t *testing.T) {
	in := NewSliceIter(rowsOf(5, 1, 4, 1, 3))
	got := Collect(NewSort(in, 0))
	want := []int64{1, 1, 3, 4, 5}
	for i, w := range want {
		if got[i][0].Int64() != w {
			t.Fatalf("sorted[%d] = %v, want %d", i, got[i][0], w)
		}
	}
}

func TestSortMultiColumnAndStability(t *testing.T) {
	rows := []Row{
		{Int(1), String_("b"), Int(100)},
		{Int(1), String_("a"), Int(200)},
		{Int(0), String_("z"), Int(300)},
		{Int(1), String_("a"), Int(400)},
	}
	got := Collect(NewSort(NewSliceIter(rows), 0, 1))
	if got[0][2].Int64() != 300 {
		t.Fatal("first row wrong")
	}
	// Stable: the two (1,"a") rows keep input order.
	if got[1][2].Int64() != 200 || got[2][2].Int64() != 400 {
		t.Fatalf("stability broken: %v", got)
	}
}

func TestSortNullsFirst(t *testing.T) {
	rows := []Row{{Int(2)}, {Null()}, {Int(1)}}
	got := Collect(NewSort(NewSliceIter(rows), 0))
	if !got[0][0].IsNull() {
		t.Fatal("NULL did not sort first")
	}
}

func TestDistinct(t *testing.T) {
	in := NewSliceIter(rowsOf(1, 2, 1, 3, 2, 1))
	got := Collect(NewDistinct(in))
	if len(got) != 3 {
		t.Fatalf("distinct = %d rows", len(got))
	}
	// Distinct on a projection.
	rows := []Row{
		{Int(1), String_("a")},
		{Int(1), String_("b")},
		{Int(2), String_("a")},
	}
	got = Collect(NewDistinct(NewSliceIter(rows), 0))
	if len(got) != 2 {
		t.Fatalf("distinct on col 0 = %d rows", len(got))
	}
	// First occurrence wins.
	if got[0][1].Str() != "a" {
		t.Fatalf("distinct kept %v", got[0])
	}
}

func TestAggregateColumn(t *testing.T) {
	rows := []Row{{Int(5)}, {Int(1)}, {Null()}, {Int(3)}}
	agg := AggregateColumn(NewSliceIter(rows), 0)
	if agg.Count != 4 || agg.NonNull != 3 {
		t.Fatalf("counts = %d/%d", agg.Count, agg.NonNull)
	}
	if agg.Min.Int64() != 1 || agg.Max.Int64() != 5 {
		t.Fatalf("min/max = %v/%v", agg.Min, agg.Max)
	}
	if agg.Sum != 9 {
		t.Fatalf("sum = %v", agg.Sum)
	}
	empty := AggregateColumn(NewSliceIter(nil), 0)
	if empty.Count != 0 || empty.NonNull != 0 {
		t.Fatalf("empty agg = %+v", empty)
	}
	floats := []Row{{Float(1.5)}, {Float(2.5)}}
	agg = AggregateColumn(NewSliceIter(floats), 0)
	if agg.Sum != 4 {
		t.Fatalf("float sum = %v", agg.Sum)
	}
}

func TestGroupCount(t *testing.T) {
	rows := []Row{
		{String_("a"), Int(1)},
		{String_("b"), Int(2)},
		{String_("a"), Int(3)},
		{String_("a"), Int(4)},
	}
	groups := GroupCount(NewSliceIter(rows), 0)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key[0].Str() != "a" || groups[0].Count != 3 {
		t.Fatalf("group a = %+v", groups[0])
	}
	if groups[1].Key[0].Str() != "b" || groups[1].Count != 1 {
		t.Fatalf("group b = %+v", groups[1])
	}
}

// Property: NewSort agrees with sort.Slice on random int rows.
func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(vals []int16) bool {
		rows := make([]Row, len(vals))
		want := make([]int64, len(vals))
		for i, v := range vals {
			rows[i] = Row{Int(int64(v))}
			want[i] = int64(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := Collect(NewSort(NewSliceIter(rows), 0))
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i][0].Int64() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distinct preserves the set of keys and drops only duplicates.
func TestQuickDistinctIsSet(t *testing.T) {
	f := func(vals []uint8) bool {
		rows := make([]Row, len(vals))
		want := map[int64]bool{}
		for i, v := range vals {
			rows[i] = Row{Int(int64(v))}
			want[int64(v)] = true
		}
		got := Collect(NewDistinct(NewSliceIter(rows)))
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r[0].Int64()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows []Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, Row{Int(int64(rng.Intn(1000)))})
	}
	got := Collect(NewSort(NewSliceIter(rows), 0))
	for i := 1; i < len(got); i++ {
		if got[i][0].Int64() < got[i-1][0].Int64() {
			t.Fatal("not sorted")
		}
	}
}

package walcheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestWalcheck(t *testing.T) {
	framework.RunTest(t, "testdata", Analyzer, "badwal", "goodwal")
}

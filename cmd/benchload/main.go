// Command benchload measures bulk-load throughput across the four
// load-path configurations — per-triple vs the batched fast path, with
// and without write-ahead logging — and writes the results as JSON
// (Experiment I's load-throughput companion table).
//
// Usage:
//
//	benchload [-triples 20000] [-trials 3] [-out BENCH_2.json]
//
// Each configuration loads the same deterministic UniProt-like corpus
// (§7.1) into a fresh store; the WAL configurations count the time to
// make every record durable (group-commit buffers are flushed inside
// the clock).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bench"
)

type result struct {
	Name          string  `json:"name"`
	WAL           bool    `json:"wal"`
	Batch         int     `json:"batch"`
	Workers       int     `json:"workers"`
	SyncEvery     int     `json:"sync_every"`
	Seconds       float64 `json:"seconds"`
	TriplesPerSec float64 `json:"triples_per_sec"`
	// Metrics comes from one extra instrumented (untimed) run of the
	// same configuration: fsync count and latency percentiles, mean
	// insert-batch size, term-cache hit rate, group-commit amortization.
	Metrics bench.LoadMetrics `json:"metrics"`
}

type report struct {
	Experiment   string   `json:"experiment"`
	Triples      int      `json:"triples"`
	Trials       int      `json:"trials"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	Results      []result `json:"results"`
	SpeedupNoWAL float64  `json:"speedup_no_wal"`
	SpeedupWAL   float64  `json:"speedup_wal"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchload:", err)
		os.Exit(1)
	}
}

func run() error {
	triples := flag.Int("triples", 20000, "corpus size in triples")
	trials := flag.Int("trials", 3, "timed trials per configuration (mean reported)")
	out := flag.String("out", "BENCH_2.json", "output JSON file")
	flag.Parse()

	doc, err := bench.GenerateNT(*triples, 1)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	configs := []struct {
		name string
		cfg  bench.LoadConfig
	}{
		{"per-triple", bench.LoadConfig{Batch: 1, Workers: 1}},
		{"batched+parallel", bench.LoadConfig{Batch: 1024, Workers: -1}},
		{"per-triple+wal", bench.LoadConfig{WAL: true, Batch: 1, Workers: 1, SyncEvery: 1}},
		{"batched+parallel+wal+group-commit", bench.LoadConfig{WAL: true, Batch: 1024, Workers: -1, SyncEvery: 8}},
	}

	rep := report{
		Experiment: "bulk-load throughput: per-triple vs batched fast path",
		Triples:    *triples,
		Trials:     *trials,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	byName := map[string]result{}
	for _, c := range configs {
		cfg := c.cfg
		cfg.Triples = *triples
		cfg.Trials = *trials
		res, err := bench.MeasureLoad(cfg, doc, dir)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		met, err := bench.CollectMetrics(cfg, doc, dir)
		if err != nil {
			return fmt.Errorf("%s (instrumented run): %w", c.name, err)
		}
		r := result{
			Name:          c.name,
			WAL:           cfg.WAL,
			Batch:         cfg.Batch,
			Workers:       cfg.Workers,
			SyncEvery:     cfg.SyncEvery,
			Seconds:       res.Seconds,
			TriplesPerSec: res.TriplesPerSec,
			Metrics:       met,
		}
		rep.Results = append(rep.Results, r)
		byName[c.name] = r
		fmt.Fprintf(os.Stderr, "%-36s %8.3fs  %10.0f triples/s  (fsyncs %d, cache hit %.0f%%)\n",
			c.name, r.Seconds, r.TriplesPerSec, met.Fsyncs, 100*met.CacheHitRate)
	}
	rep.SpeedupNoWAL = byName["batched+parallel"].TriplesPerSec / byName["per-triple"].TriplesPerSec
	rep.SpeedupWAL = byName["batched+parallel+wal+group-commit"].TriplesPerSec / byName["per-triple+wal"].TriplesPerSec
	fmt.Fprintf(os.Stderr, "speedup: %.1fx (no WAL), %.1fx (WAL)\n", rep.SpeedupNoWAL, rep.SpeedupWAL)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(data, '\n'), 0o644)
}

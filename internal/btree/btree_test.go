package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intCmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func newIntTree() *Tree[int64] { return New(intCmp) }

func TestInsertGet(t *testing.T) {
	tr := newIntTree()
	if !tr.Insert(int64(10), 1) {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(int64(10), 1) {
		t.Fatal("duplicate (key,id) insert returned true")
	}
	if !tr.Insert(int64(10), 2) {
		t.Fatal("same key, new id insert returned false")
	}
	got := tr.Get(int64(10))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Get(10) = %v, want [1 2]", got)
	}
	if tr.Get(int64(11)) != nil {
		t.Fatalf("Get(11) = %v, want nil", tr.Get(int64(11)))
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestContains(t *testing.T) {
	tr := newIntTree()
	for i := int64(0); i < 100; i += 2 {
		tr.Insert(i, i)
	}
	for i := int64(0); i < 100; i++ {
		want := i%2 == 0
		if got := tr.Contains(i); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newIntTree()
	const n = 2000
	for i := int64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	if tr.Delete(int64(n+5), 0) {
		t.Fatal("delete of absent key returned true")
	}
	// Delete odd keys.
	for i := int64(1); i < n; i += 2 {
		if !tr.Delete(i, i) {
			t.Fatalf("Delete(%d) returned false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := int64(0); i < n; i++ {
		want := i%2 == 0
		if got := tr.Contains(i); got != want {
			t.Fatalf("after delete: Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newIntTree()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		tr.Insert(int64(v), int64(v))
	}
	for _, v := range rand.New(rand.NewSource(2)).Perm(n) {
		if !tr.Delete(int64(v), int64(v)) {
			t.Fatalf("Delete(%d) returned false", v)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting everything, want 1", tr.Height())
	}
}

func TestAscendOrder(t *testing.T) {
	tr := newIntTree()
	perm := rand.New(rand.NewSource(3)).Perm(10000)
	for _, v := range perm {
		tr.Insert(int64(v), int64(v))
	}
	var got []int64
	tr.Ascend(func(k int64, _ int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(perm) {
		t.Fatalf("visited %d entries, want %d", len(got), len(perm))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend did not visit keys in order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := newIntTree()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	count := 0
	tr.Ascend(func(int64, int64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("visited %d entries after early stop, want 7", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := newIntTree()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	ptr := func(v int64) *int64 { return &v }
	cases := []struct {
		lo, hi   *int64
		from, to int64 // inclusive expectation
	}{
		{ptr(10), ptr(20), 10, 20},
		{nil, ptr(5), 0, 5},
		{ptr(995), nil, 995, 999},
		{nil, nil, 0, 999},
		{ptr(500), ptr(500), 500, 500},
	}
	for _, c := range cases {
		var got []int64
		tr.AscendRange(c.lo, c.hi, func(k int64, _ int64) bool {
			got = append(got, k)
			return true
		})
		want := c.to - c.from + 1
		if int64(len(got)) != want {
			t.Fatalf("range [%v,%v]: got %d entries, want %d", c.lo, c.hi, len(got), want)
		}
		if got[0] != c.from || got[len(got)-1] != c.to {
			t.Fatalf("range [%v,%v]: got [%d..%d]", c.lo, c.hi, got[0], got[len(got)-1])
		}
	}
}

func TestAscendRangeEmpty(t *testing.T) {
	tr := newIntTree()
	for i := int64(0); i < 100; i += 10 {
		tr.Insert(i, i)
	}
	lo, hi := int64(11), int64(19)
	var got []int64
	tr.AscendRange(&lo, &hi, func(k int64, _ int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	words := []string{"pear", "apple", "orange", "banana", "kiwi"}
	for i, w := range words {
		tr.Insert(w, int64(i))
	}
	var got []string
	tr.Ascend(func(k string, _ int64) bool {
		got = append(got, k)
		return true
	})
	want := []string{"apple", "banana", "kiwi", "orange", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestQuickAgainstMap is a property test: after an arbitrary sequence of
// inserts and deletes, the tree contains exactly the same entries as a map
// model, in sorted order.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []int16) bool {
		tr := newIntTree()
		model := map[int64]bool{}
		for _, op := range ops {
			k := int64(op) % 64 // force collisions
			if op%3 == 0 {
				delete(model, k)
				tr.Delete(k, k)
			} else {
				model[k] = true
				tr.Insert(k, k)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		prev := int64(-1 << 62)
		ok := true
		tr.Ascend(func(k int64, id int64) bool {
			if k <= prev || !model[k] || id != k {
				ok = false
				return false
			}
			prev = k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeMatchesSort verifies AscendRange against sorting the model.
func TestQuickRangeMatchesSort(t *testing.T) {
	f := func(keys []int16, lo16, hi16 int16) bool {
		if lo16 > hi16 {
			lo16, hi16 = hi16, lo16
		}
		lo, hi := int64(lo16), int64(hi16)
		tr := newIntTree()
		model := map[int64]bool{}
		for _, k16 := range keys {
			k := int64(k16)
			tr.Insert(k, k)
			model[k] = true
		}
		var want []int64
		for k := range model {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		tr.AscendRange(&lo, &hi, func(k int64, _ int64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := newIntTree()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, i)
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Fatalf("Height = %d for 100k sequential keys, want small logarithmic height", h)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := newIntTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := newIntTree()
	for i := int64(0); i < 1_000_000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i) % 1_000_000)
	}
}

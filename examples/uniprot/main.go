// Uniprot demonstrates the paper's evaluation workload (§7.1): a
// UniProt-like protein catalogue generated synthetically, bulk-loaded into
// the RDF object store with an application table and §7.2 function-based
// indexes, reified per Table 2's statement counts, and queried with the
// Experiment II and III probes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/uniprot"
)

func main() {
	size := flag.Int("triples", 10_000, "dataset size in triples")
	flag.Parse()

	reified := uniprot.PaperReifiedCount(*size)
	fmt.Printf("generating %d UniProt-like triples (%d reified statements)…\n", *size, reified)
	start := time.Now()
	ds, err := bench.LoadOracle(*size, reified, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))
	n, _ := ds.Store.NumTriples(ds.Model)
	fmt.Printf("rdf_link$ rows: %d (base %d + %d reification rows)\n", n, ds.Triples, ds.Reified)
	fmt.Printf("rdf_value$ rows: %d distinct text values\n", ds.Store.NumValues())

	// Experiment II probe (Figure 10): all triples whose subject is P93259.
	rows, err := ds.App.QueryBySubject(ds.SubIdx, uniprot.ProbeSubject)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: subject = %s → %d rows (paper: 24)\n", uniprot.ProbeSubject, len(rows))
	for i, r := range rows {
		if i == 5 {
			fmt.Printf("  … %d more\n", len(rows)-5)
			break
		}
		obj := r.Object.Lexical()
		if len(obj) > 60 {
			obj = obj[:57] + "..."
		}
		fmt.Printf("  %s → %s\n", r.Property.Value, obj)
	}

	// Experiment III probes (Figure 11).
	isReif, err := ds.Store.IsReified(ds.Model,
		uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.ProbeSeeAlso, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIS_REIFIED(P93259, rdfs:seeAlso, SM00101) = %v (paper: true)\n", isReif)
	isReif, err = ds.Store.IsReified(ds.Model,
		uniprot.ProbeSubject, uniprot.SeeAlso, uniprot.NonReifiedProbeObject, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IS_REIFIED(P93259, rdfs:seeAlso, PF09103) = %v (paper: false)\n", isReif)

	// The flat-table path (Experiment I / Figure 9) returns the same rows.
	flat, err := ds.Store.FlatQueryBySubject(ds.Model, uniprot.ProbeSubject)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat 3-way join over rdf_value$/rdf_link$: %d rows (must equal member functions)\n", len(flat))
}

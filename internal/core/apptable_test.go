package core

import (
	"testing"

	"repro/internal/ndm"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

func mustURI(u string) rdfterm.Term { return rdfterm.NewURI(u) }

func newAppTable(t *testing.T, s *Store, name string) *ApplicationTable {
	t.Helper()
	db := reldb.NewDatabase("APP")
	at, err := CreateApplicationTable(db, s, name, reldb.Column{Name: "ID", Kind: reldb.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	return at
}

// TestApplicationTableCIAScenario walks the paper's §4.3 steps: create the
// application table, create the graph, insert triples.
func TestApplicationTableCIAScenario(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	ciadata := newAppTable(t, s, "ciadata")

	ts, err := ciadata.InsertTriple([]reldb.Value{reldb.Int(1)}, "cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if err != nil {
		t.Fatal(err)
	}
	if ciadata.Len() != 1 {
		t.Fatalf("app table rows = %d", ciadata.Len())
	}
	// Read the row back; the object re-binds and member functions work.
	var got TripleS
	ciadata.Scan(func(_ reldb.RowID, user []reldb.Value, row TripleS) bool {
		if user[0].Int64() != 1 {
			t.Errorf("user column = %v", user[0])
		}
		got = row
		return true
	})
	if got.TID != ts.TID {
		t.Fatalf("round-tripped TID = %d, want %d", got.TID, ts.TID)
	}
	sub, err := got.GetSubject()
	if err != nil || sub != "http://www.us.gov#files" {
		t.Fatalf("GetSubject = %q, %v", sub, err)
	}
}

func TestApplicationTableValidation(t *testing.T) {
	s := newStoreWithModel(t, "m")
	at := newAppTable(t, s, "t")
	if _, err := at.Insert([]reldb.Value{}, TripleS{}); err == nil {
		t.Fatal("wrong user column count accepted")
	}
	if _, err := at.Insert([]reldb.Value{reldb.Int(1)}, TripleS{}); err == nil {
		t.Fatal("zero TripleS accepted")
	}
}

func TestApplicationTableGet(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	at := newAppTable(t, s, "t")
	ts, _ := at.InsertTriple([]reldb.Value{reldb.Int(9)}, "m", "gov:a", "gov:p", "gov:b", a)
	user, got, err := at.Get(0)
	if err != nil || user[0].Int64() != 9 || got.TID != ts.TID {
		t.Fatalf("Get = %v, %v, %v", user, got, err)
	}
}

// TestFunctionBasedIndexes exercises §7.2: subject/property/object
// function-based indexes and the Experiment II query path.
func TestFunctionBasedIndexes(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	at := newAppTable(t, s, "uniprot")
	rows := [][3]string{
		{"gov:prot1", "gov:seeAlso", "gov:x1"},
		{"gov:prot1", "gov:seeAlso", "gov:x2"},
		{"gov:prot1", "gov:organism", `"9606"`},
		{"gov:prot2", "gov:seeAlso", "gov:x1"},
	}
	for i, r := range rows {
		if _, err := at.InsertTriple([]reldb.Value{reldb.Int(int64(i))}, "m", r[0], r[1], r[2], a); err != nil {
			t.Fatal(err)
		}
	}
	subIdx, err := at.CreateSubjectIndex("sub_fbidx")
	if err != nil {
		t.Fatal(err)
	}
	propIdx, err := at.CreatePropertyIndex("prop_fbidx")
	if err != nil {
		t.Fatal(err)
	}
	objIdx, err := at.CreateObjectIndex("obj_fbidx")
	if err != nil {
		t.Fatal(err)
	}

	got, err := at.QueryBySubject(subIdx, "http://www.us.gov#prot1")
	if err != nil || len(got) != 3 {
		t.Fatalf("QueryBySubject = %d rows, %v", len(got), err)
	}
	if n := len(propIdx.Lookup(reldb.Key{reldb.String_("http://www.us.gov#seeAlso")})); n != 3 {
		t.Fatalf("property index rows = %d", n)
	}
	if n := len(objIdx.Lookup(reldb.Key{reldb.String_("9606")})); n != 1 {
		t.Fatalf("object index rows = %d", n)
	}
	// New inserts are indexed automatically.
	at.InsertTriple([]reldb.Value{reldb.Int(99)}, "m", "gov:prot1", "gov:created", `"2000-01-01"`, a)
	got, _ = at.QueryBySubject(subIdx, "http://www.us.gov#prot1")
	if len(got) != 4 {
		t.Fatalf("after insert QueryBySubject = %d rows", len(got))
	}
	// Duplicate triple in the app table: two rows share IDs (Figure 6's
	// COST semantics), both visible via the index.
	at.InsertTriple([]reldb.Value{reldb.Int(100)}, "m", "gov:prot1", "gov:created", `"2000-01-01"`, a)
	got, _ = at.QueryBySubject(subIdx, "http://www.us.gov#prot1")
	if len(got) != 5 {
		t.Fatalf("after duplicate insert = %d rows", len(got))
	}
}

func TestContainerBagSeq(t *testing.T) {
	s := newStoreWithModel(t, "m")
	members := []string{"http://class/student1", "http://class/student2", "http://class/student3"}
	bag, err := s.CreateContainer("m", BagContainer,
		mustURI(members[0]), mustURI(members[1]), mustURI(members[2]))
	if err != nil {
		t.Fatal(err)
	}
	kind, err := s.ContainerKindOf("m", bag)
	if err != nil || kind != BagContainer {
		t.Fatalf("kind = %q, %v", kind, err)
	}
	got, err := s.ContainerMembers("m", bag)
	if err != nil || len(got) != 3 {
		t.Fatalf("members = %v, %v", got, err)
	}
	for i, m := range got {
		if m.Value != members[i] {
			t.Errorf("member %d = %v", i, m)
		}
	}
	// Membership links carry LINK_TYPE RDF_MEMBER.
	prop := mustURI(rdfterm.MembershipProperty(1))
	ts, err := s.Find("m", Pattern{Subject: &bag, Predicate: &prop})
	if err != nil || len(ts) != 1 {
		t.Fatalf("find member 1 = %v, %v", ts, err)
	}
	info, _ := s.LinkInfo(ts[0].TID)
	if info.LinkType != "RDF_MEMBER" {
		t.Errorf("LINK_TYPE = %s", info.LinkType)
	}
	// Append continues the numbering.
	n, err := s.AppendToContainer("m", bag, mustURI("http://class/student4"))
	if err != nil || n != 4 {
		t.Fatalf("append = %d, %v", n, err)
	}
	got, _ = s.ContainerMembers("m", bag)
	if len(got) != 4 {
		t.Fatalf("members after append = %d", len(got))
	}
	// Unknown kind rejected.
	if _, err := s.CreateContainer("m", ContainerKind("http://bad")); err == nil {
		t.Fatal("bad container kind accepted")
	}
}

func TestNetworkView(t *testing.T) {
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	// m1: a → b → c; m2: c → d.
	s.NewTripleS("m1", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m1", "gov:b", "gov:p", "gov:c", a)
	s.NewTripleS("m2", "gov:c", "gov:p", "gov:d", a)

	all, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	aID, ok := all.NodeID(mustURI("http://www.us.gov#a"))
	if !ok {
		t.Fatal("node a missing")
	}
	dID, _ := all.NodeID(mustURI("http://www.us.gov#d"))
	// Across all models, a reaches d.
	if !ndm.IsReachable(all, aID, dID) {
		t.Fatal("a should reach d across models")
	}
	// Restricted to m1 only, it does not.
	m1only, err := s.Network("m1")
	if err != nil {
		t.Fatal(err)
	}
	if ndm.IsReachable(m1only, aID, dID) {
		t.Fatal("a should not reach d within m1")
	}
	term, err := all.NodeTerm(aID)
	if err != nil || term.Value != "http://www.us.gov#a" {
		t.Fatalf("NodeTerm = %v, %v", term, err)
	}
	if _, err := s.Network("missing"); err == nil {
		t.Fatal("missing model accepted")
	}
}

package ndm

import "repro/internal/obs"

// Observability. NDM analysis runs over the Graph interface, so the
// instrumentation point is the graph itself: Instrument wraps any Graph
// so every node enumerated and link expanded counts one traversal step.
// The series name matches the one the store's RDFNetwork view records
// (ndm_traversal_steps_total), so standalone logical networks and the
// RDF-store-as-network land in the same family — the paper's point that
// the RDF graph *is* an NDM network carries over to the metrics.

// Metrics instruments NDM traversals against an obs registry. A nil
// *Metrics is the disabled state: Instrument returns the graph
// unchanged, so uninstrumented analysis pays nothing.
type Metrics struct {
	steps *obs.Counter
}

// NewMetrics registers the NDM metric family on reg. Returns nil when
// reg is nil, which disables instrumentation end to end.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		steps: reg.Counter("ndm_traversal_steps_total", "graph elements visited by NDM traversals (nodes enumerated plus links expanded)"),
	}
}

// Instrument wraps g so traversal work flows into the registry. With a
// nil receiver it returns g unchanged — callers thread one pointer and
// never branch themselves.
func (m *Metrics) Instrument(g Graph) Graph {
	if m == nil {
		return g
	}
	return &countedGraph{g: g, m: m}
}

// countedGraph counts each visit callback as one step and adds the
// total once per call, keeping the per-element cost to a local
// increment (one atomic add per Nodes/OutLinks/InLinks call, not per
// element).
type countedGraph struct {
	g Graph
	m *Metrics
}

func (c *countedGraph) HasNode(node int64) bool { return c.g.HasNode(node) }

func (c *countedGraph) Nodes(fn func(node int64) bool) {
	n := 0
	c.g.Nodes(func(node int64) bool {
		n++
		return fn(node)
	})
	c.m.steps.Add(int64(n))
}

func (c *countedGraph) OutLinks(node int64, fn func(linkID, end int64, cost float64) bool) {
	n := 0
	c.g.OutLinks(node, func(linkID, end int64, cost float64) bool {
		n++
		return fn(linkID, end, cost)
	})
	c.m.steps.Add(int64(n))
}

func (c *countedGraph) InLinks(node int64, fn func(linkID, start int64, cost float64) bool) {
	n := 0
	c.g.InLinks(node, func(linkID, start int64, cost float64) bool {
		n++
		return fn(linkID, start, cost)
	})
	c.m.steps.Add(int64(n))
}

var _ Graph = (*countedGraph)(nil)

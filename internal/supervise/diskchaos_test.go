package supervise

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Disk-pressure suite: the segmented WAL's budget + the supervisor's
// DegradedDisk state + automatic checkpointing, end to end.

// openDiskSupervisor opens a supervisor over a segmented WAL in a fresh
// temp dir.
func openDiskSupervisor(t *testing.T, mutate func(*Config)) (*Supervisor, *recorder, string) {
	t.Helper()
	dir := t.TempDir()
	rec := &recorder{}
	cfg := Config{
		SnapshotPath: filepath.Join(dir, "store.snap"),
		WALDir:       filepath.Join(dir, "wal"),
		Segment:      wal.DirOptions{SegmentBytes: 256},
		OnTransition: rec.note,
		Backoff:      Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.1},
		Seed:         7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv, rec, dir
}

// TestHardBudgetDegradesAndSelfHeals: exhausting the hard byte budget
// moves the store to DegradedDisk with typed ErrDiskFull rejections, and
// the recovery loop's re-baseline (which checkpoints and retires
// segments) brings it back to Healthy with no operator involvement.
func TestHardBudgetDegradesAndSelfHeals(t *testing.T) {
	sv, rec, _ := openDiskSupervisor(t, func(cfg *Config) {
		cfg.Segment.Budget = wal.Budget{HardBytes: 2 << 10}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Insert until the budget rejects.
	var tripped error
	for i := 0; i < 10_000 && tripped == nil; i++ {
		if err := insert(sv, "m", fmt.Sprintf("x:s%d", i), "x:p", fmt.Sprintf("x:o%d", i)); err != nil {
			tripped = err
		}
	}
	if tripped == nil {
		t.Fatal("hard budget never rejected a mutation")
	}
	if !errors.Is(tripped, core.ErrDurability) && !errors.Is(tripped, ErrDegraded) {
		t.Fatalf("budget rejection is untyped: %v", tripped)
	}

	// While degraded, the gate rejects with ErrDiskFull (which also
	// matches the generic ErrDegraded for old callers) — unless recovery
	// already healed the store, which is the point of the exercise.
	if sv.State() == DegradedDisk {
		err := insert(sv, "m", "x:blocked", "x:p", "x:o")
		if err != nil && !errors.Is(err, ErrDiskFull) {
			t.Fatalf("gate rejection during DegradedDisk = %v, want ErrDiskFull", err)
		}
	}

	// Self-healing: the re-baseline checkpoint frees the segments.
	waitState(t, sv, Healthy, 5*time.Second)
	if !rec.hasEdge(Healthy, DegradedDisk) {
		t.Fatalf("Healthy→Degraded(disk) never observed: %+v", rec.transitions())
	}
	if !rec.hasEdge(Recovering, Healthy) {
		t.Fatalf("recovery back to Healthy never observed: %+v", rec.transitions())
	}
	// And the store is writable again.
	if err := insert(sv, "m", "x:after", "x:p", "x:o"); err != nil {
		t.Fatalf("insert after self-heal: %v", err)
	}
}

// TestDiskRecoveryNeverReachesFailed: disk-pressure episodes are exempt
// from the recovery attempt budget — with a tiny MaxAttempts and a hard
// budget too small to ever checkpoint under, the supervisor keeps
// retrying in DegradedDisk rather than going terminal.
func TestDiskRecoveryNeverReachesFailed(t *testing.T) {
	block := make(chan struct{}) // closed when the test frees space
	var armed atomic.Bool       // false during the initial Open
	sv, _, _ := openDiskSupervisor(t, func(cfg *Config) {
		cfg.Backoff.MaxAttempts = 2
		cfg.Segment.Budget = wal.Budget{HardBytes: 1 << 10}
		// Make every re-baseline fail like a still-full disk until freed.
		real := wal.OpenDir
		cfg.OpenDir = func(dir string, fromSeq int64, opts wal.DirOptions) (*wal.Dir, wal.DirScanResult, error) {
			select {
			case <-block:
				return real(dir, fromSeq, opts)
			default:
			}
			if armed.Load() {
				return nil, wal.DirScanResult{}, fmt.Errorf("reopen: %w", wal.ErrNoSpace)
			}
			return real(dir, fromSeq, opts)
		}
	})
	armed.Store(true)
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var tripped bool
	for i := 0; i < 10_000 && !tripped; i++ {
		if err := insert(sv, "m", fmt.Sprintf("x:s%d", i), "x:p", "x:o"); err != nil {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("hard budget never tripped")
	}

	// Give the loop time to blow past MaxAttempts; it must stay in the
	// DegradedDisk/Recovering orbit, never Failed.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if st := sv.State(); st == Failed {
			t.Fatalf("disk episode reached terminal Failed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Free the space: the very next attempt heals.
	close(block)
	waitState(t, sv, Healthy, 5*time.Second)
}

// TestAutoCheckpointSoftWatermark: crossing the soft watermark triggers
// an immediate supervisor checkpoint that retires segments before the
// hard limit is ever hit — the store stays Healthy throughout.
func TestAutoCheckpointSoftWatermark(t *testing.T) {
	sv, rec, _ := openDiskSupervisor(t, func(cfg *Config) {
		cfg.Segment.Budget = wal.Budget{SoftBytes: 1 << 10, HardBytes: 64 << 10}
		cfg.Checkpoint = CheckpointPolicy{Poll: time.Millisecond}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := insert(sv, "m", fmt.Sprintf("x:s%d", i), "x:p", fmt.Sprintf("x:o%d", i)); err != nil {
			t.Fatalf("insert %d rejected (%v); the soft watermark should have checkpointed first", i, err)
		}
	}
	// The checkpoint loop runs async: wait for it to bring the WAL back
	// under the soft watermark. (Residual dirty mutations below the
	// watermark are fine — with no Interval/WALBytes policy they wait for
	// the next soft crossing.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sv.mu.Lock()
		size := int64(0)
		if sv.dir != nil {
			size = sv.dir.Size()
		}
		ckpt := !sv.lastCkpt.IsZero()
		sv.mu.Unlock()
		if ckpt && size < 1<<10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-checkpoint never brought the WAL under the watermark (size %d)", size)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, tr := range rec.transitions() {
		if tr.To == DegradedDisk {
			t.Fatalf("soft-watermark flow degraded the store: %+v", tr)
		}
	}
}

// TestAutoCheckpointInterval: the age trigger checkpoints a single-file
// WAL too (the policy is not segmented-only).
func TestAutoCheckpointInterval(t *testing.T) {
	sv, _, _, dir := openTestSupervisor(t, func(cfg *Config) {
		cfg.Checkpoint = CheckpointPolicy{Interval: 5 * time.Millisecond, Poll: time.Millisecond}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// The snapshot lands on disk (rename) before the loop zeroes the
	// dirty counter under sv.mu, so wait for both — seeing the file
	// alone races with the counter reset.
	deadline := time.Now().Add(5 * time.Second)
	var snapped bool
	for {
		if !snapped {
			_, err := core.LoadFile(filepath.Join(dir, "store.snap"))
			snapped = err == nil
		}
		if snapped {
			sv.mu.Lock()
			dirty := sv.dirty
			sv.mu.Unlock()
			if dirty == 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			if !snapped {
				t.Fatal("interval trigger never wrote a snapshot")
			}
			t.Fatal("dirty counter never reset after auto-checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosDiskENOSPC is the acceptance chaos run: concurrent writers
// and readers against a segmented WAL whose files randomly fail with
// injected ENOSPC (some torn mid-write), with the soft watermark driving
// automatic checkpoints. Asserts:
//
//   - the DegradedDisk cycle is observed and always heals back to
//     Healthy (never Failed),
//   - every writer rejection is typed (ErrDegraded family or
//     core.ErrDurability) — a raw ENOSPC never escapes untyped,
//   - readers never see a corrupt result,
//   - post-mortem recovery from disk alone holds every acked commit.
func TestChaosDiskENOSPC(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	rec := &recorder{}

	// Track every segment file ever created so chaos can arm the latest.
	var fmu sync.Mutex
	var flakies []*wal.FlakyFile
	wrapSeg := func(f wal.File) wal.File {
		fl := wal.NewFlaky(f)
		fl.SetNoSpaceRate(0.02, 99)
		fl.SetPartialWriteFraction(0.5) // half the ENOSPCs tear mid-frame
		fmu.Lock()
		flakies = append(flakies, fl)
		fmu.Unlock()
		return fl
	}

	sv, err := Open(Config{
		SnapshotPath: filepath.Join(dir, "store.snap"),
		WALDir:       filepath.Join(dir, "wal"),
		Segment: wal.DirOptions{
			SegmentBytes: 512,
			Budget:       wal.Budget{SoftBytes: 4 << 10, HardBytes: 64 << 10},
			Wrap:         wrapSeg,
		},
		Checkpoint:    CheckpointPolicy{Poll: time.Millisecond},
		OnTransition:  rec.note,
		ScrubInterval: 5 * time.Millisecond,
		ScrubSlice:    64,
		Backoff:       Backoff{Initial: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("chaos", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		readers  = 2
		duration = 1500 * time.Millisecond
	)
	var (
		acked   sync.Map
		ackedN  atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		chaoErr atomic.Value
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				subj := fmt.Sprintf("x:w%d_%d", w, i)
				err := insert(sv, "chaos", subj, "x:p", fmt.Sprintf("x:o%d", i))
				if err == nil {
					acked.Store("http://x#"+strings.TrimPrefix(subj, "x:"), true)
					ackedN.Add(1)
					continue
				}
				if !errors.Is(err, ErrDegraded) && !errors.Is(err, core.ErrDurability) {
					chaoErr.CompareAndSwap(nil, fmt.Sprintf("writer %d: untyped rejection: %v", w, err))
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := sv.Find(context.Background(), "chaos", core.Pattern{})
				if err != nil {
					chaoErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: Find failed: %v", r, err))
					return
				}
				for _, row := range rows {
					tr, err := row.GetTriple()
					if err != nil {
						chaoErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: corrupt row: %v", r, err))
						return
					}
					if !strings.HasPrefix(tr.Subject.Value, "http://x#") {
						chaoErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: malformed triple %v", r, tr))
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(r)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if msg := chaoErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	fmu.Lock()
	injected := 0
	for _, fl := range flakies {
		injected += fl.InjectedNoSpace()
	}
	segsSeen := len(flakies)
	fmu.Unlock()
	if injected == 0 {
		t.Fatal("no ENOSPC was ever injected; raise the rate or duration")
	}
	if ackedN.Load() == 0 {
		t.Fatal("no commit was ever acknowledged")
	}
	for _, tr := range rec.transitions() {
		if tr.To == Failed {
			t.Fatalf("disk chaos reached terminal Failed: %+v", tr)
		}
	}
	t.Logf("disk chaos: %d ENOSPC injections across %d segment files, %d commits acked, %d recoveries",
		injected, segsSeen, ackedN.Load(), sv.Health().Recoveries)

	// Settle and shut down cleanly.
	waitState(t, sv, Healthy, 10*time.Second)
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-mortem from disk alone (plain files, no injection).
	st, d, _, err := core.RecoverDir(filepath.Join(dir, "store.snap"), filepath.Join(dir, "wal"),
		wal.DirOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if errs := st.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("recovered store violates invariants: %v", errs[0])
	}
	rows, err := st.Find("chaos", core.Pattern{})
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[string]bool, len(rows))
	for _, row := range rows {
		subj, err := row.GetSubject()
		if err != nil {
			t.Fatalf("recovered row unreadable: %v", err)
		}
		present[subj] = true
	}
	lost := 0
	acked.Range(func(k, _ interface{}) bool {
		if !present[k.(string)] {
			lost++
			if lost <= 5 {
				t.Errorf("acknowledged commit lost after recovery: %s", k)
			}
		}
		return true
	})
	if lost > 0 {
		t.Fatalf("%d acknowledged commit(s) lost (of %d)", lost, ackedN.Load())
	}
}

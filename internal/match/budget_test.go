package match

import (
	"errors"
	"testing"
)

// Budget enforcement: Limit truncates the projected rows (true top-N
// under ORDER BY), MaxBindings aborts a join whose intermediate sets
// explode. Both are the admission price of serving untrusted queries
// over HTTP.

func TestMatchLimitTruncates(t *testing.T) {
	s := buildJoinStore(t, 6, 0) // 6-wide all-to-all layers: 36 rows per 2-hop
	rs, err := Match(s, "(?a <http://x#p> ?b)", Options{Models: []string{"big"}, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 10 || !rs.Truncated {
		t.Fatalf("rows = %d truncated = %v, want 10/true", rs.Len(), rs.Truncated)
	}
	// A limit above the result size must not mark truncation.
	rs, err = Match(s, "(<http://x#n0_0> <http://x#p> ?b)", Options{Models: []string{"big"}, Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 6 || rs.Truncated {
		t.Fatalf("rows = %d truncated = %v, want 6/false", rs.Len(), rs.Truncated)
	}
}

func TestMatchLimitWithOrderByReturnsTopN(t *testing.T) {
	s := buildJoinStore(t, 5, 0)
	full, err := Match(s, "(<http://x#n0_0> <http://x#p> ?b)", Options{
		Models: []string{"big"}, OrderBy: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := Match(s, "(<http://x#n0_0> <http://x#p> ?b)", Options{
		Models: []string{"big"}, OrderBy: []string{"b"}, Limit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 2 || !top.Truncated {
		t.Fatalf("rows = %d truncated = %v, want 2/true", top.Len(), top.Truncated)
	}
	for i := 0; i < 2; i++ {
		want, _ := full.Get(i, "b")
		got, _ := top.Get(i, "b")
		if !got.Equal(want) {
			t.Fatalf("row %d = %v, want sorted prefix %v", i, got, want)
		}
	}
}

func TestMatchMaxBindingsAborts(t *testing.T) {
	s := buildJoinStore(t, 10, 0) // w⁴ = 10000 bindings by the last stage
	query := "(?a <http://x#p> ?b) (?b <http://x#p> ?c) (?c <http://x#p> ?d)"
	_, err := Match(s, query, Options{Models: []string{"big"}, MaxBindings: 50})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget in chain", err)
	}
	// The same query with headroom completes.
	rs, err := Match(s, query, Options{Models: []string{"big"}, MaxBindings: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 10000 {
		t.Fatalf("rows = %d, want 10000", rs.Len())
	}
}

// Command repro-vet bundles the repository's contract analyzers —
// lockcheck, walcheck, errwrapcheck, viewcheck, releasecheck, ctxcheck —
// into one binary that runs two ways:
//
//	go vet -vettool=$(pwd)/bin/repro-vet ./...   # vet protocol (CI, make lint)
//	bin/repro-vet ./...                          # standalone, no go vet driver
//	bin/repro-vet -summary ./...                 # standalone + per-analyzer counts
//
// Standalone mode loads packages with the framework's own loader, so it
// works offline and without build-cache plumbing; the vet-protocol mode
// is what the Makefile and CI use because it inherits go vet's caching
// and package enumeration. -summary prints a diagnostic count for every
// analyzer — zeros included — so a lint log shows which pass looked and
// found nothing, not just which pass complained.
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers/ctxcheck"
	"repro/tools/analyzers/errwrapcheck"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/lockcheck"
	"repro/tools/analyzers/releasecheck"
	"repro/tools/analyzers/viewcheck"
	"repro/tools/analyzers/walcheck"
)

var analyzers = []*framework.Analyzer{
	lockcheck.Analyzer,
	walcheck.Analyzer,
	errwrapcheck.Analyzer,
	viewcheck.Analyzer,
	releasecheck.Analyzer,
	ctxcheck.Analyzer,
}

func main() {
	if framework.VetMain(os.Args[1:], analyzers) {
		return
	}
	args := os.Args[1:]
	summary := false
	if len(args) > 0 && args[0] == "-summary" {
		summary = true
		args = args[1:]
	}
	os.Exit(standalone(args, summary))
}

// standalone analyzes the named packages ("./..." patterns or package
// directories) without the go vet driver.
func standalone(args []string, summary bool) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, modPath, err := framework.FindModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	dirs, err := framework.ExpandPatterns(root, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	loader := framework.NewLoader(root, modPath)
	counts := map[string]int{}
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			exit = 1
			continue
		}
		diags, err := framework.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Println(framework.FormatRel(pkg.Fset, root, d))
			counts[d.Analyzer]++
			exit = 1
		}
	}
	if summary {
		fmt.Printf("repro-vet: %d packages analyzed\n", len(dirs))
		for _, a := range analyzers {
			fmt.Printf("  %-14s %d diagnostic(s)\n", a.Name, counts[a.Name])
		}
	}
	return exit
}

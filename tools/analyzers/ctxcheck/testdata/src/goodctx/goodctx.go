// Package goodctx holds the shapes ctxcheck accepts outside the strict
// request-path packages.
package goodctx

import "context"

func lookup(q string) int { return len(q) }

func lookupCtx(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

// helper has no context-taking sibling, so calling it from a context-
// bearing function threads nothing and is fine.
func helper(n int) int { return n * 2 }

// root is allowed: no caller context to thread, and this package is not
// a request path — command mains and test harnesses start here.
func root() context.Context {
	return context.Background()
}

// threads passes its context to the sibling that takes one.
func threads(ctx context.Context, q string) int {
	return lookupCtx(ctx, q) + helper(1)
}

// alreadyCtx calls the Ctx variant directly; nothing to flag even
// though the context-free sibling exists.
func alreadyCtx(ctx context.Context, q string) int {
	return lookupCtx(ctx, q)
}

// noCtxCaller has no context, so calling the plain variant is the only
// choice; rule 3 needs a context in hand to fire.
func noCtxCaller(q string) int {
	return lookup(q)
}

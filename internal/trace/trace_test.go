package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// always retains everything it finishes: sampling at 1 keeps even
// fast, clean traces.
func alwaysTracer() *Tracer {
	return New(Config{SlowThreshold: time.Hour, SampleRate: 1})
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatalf("nil tracer returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("nil tracer polluted the context")
	}
	if tr.StartRoot("bg") != nil {
		t.Fatalf("nil tracer StartRoot returned a span")
	}
	if got := tr.Len(); got != 0 {
		t.Fatalf("nil tracer Len = %d", got)
	}
	if _, ok := tr.Get("deadbeef"); ok {
		t.Fatalf("nil tracer Get succeeded")
	}
	if tr.Snapshot() != nil {
		t.Fatalf("nil tracer Snapshot non-nil")
	}

	// Every span method must be callable on nil.
	var s *Span
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.SetError(errors.New("boom"))
	s.Force()
	s.AddCompleted("pre", time.Time{}, time.Second, nil, false)
	if s.Child("c") != nil {
		t.Fatalf("nil span Child returned a span")
	}
	if s.TraceID() != "" || s.SpanID() != "" || s.Traceparent() != "" {
		t.Fatalf("nil span leaked identifiers")
	}
	s.End()
}

func TestTailSamplingRetainsSlowErrorForced(t *testing.T) {
	tr := New(Config{SlowThreshold: 10 * time.Millisecond, SampleRate: 0})

	// Fast, clean, unforced: dropped.
	fast := tr.StartRoot("fast")
	fast.End()
	if tr.Len() != 0 {
		t.Fatalf("fast clean trace retained")
	}

	// Slow: retained with ReasonSlow.
	slow := tr.StartRoot("slow")
	time.Sleep(15 * time.Millisecond)
	slow.End()
	td, ok := tr.Get(slow.TraceID())
	if !ok || td.Reason != ReasonSlow {
		t.Fatalf("slow trace: ok=%v reason=%q", ok, td.Reason)
	}

	// Errored: retained with ReasonError, Error set.
	bad := tr.StartRoot("bad")
	bad.SetError(errors.New("boom"))
	bad.End()
	td, ok = tr.Get(bad.TraceID())
	if !ok || td.Reason != ReasonError || !td.Error {
		t.Fatalf("errored trace: ok=%v reason=%q error=%v", ok, td.Reason, td.Error)
	}
	if td.Spans[0].Attrs["error"] != "boom" {
		t.Fatalf("error message not recorded: %v", td.Spans[0].Attrs)
	}

	// Forced: retained with ReasonForced even though fast and clean.
	forced := tr.StartRoot("forced")
	forced.Force()
	forced.End()
	if td, ok = tr.Get(forced.TraceID()); !ok || td.Reason != ReasonForced {
		t.Fatalf("forced trace: ok=%v reason=%q", ok, td.Reason)
	}
}

func TestProbabilisticSampling(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour, SampleRate: 1})
	s := tr.StartRoot("sampled")
	s.End()
	td, ok := tr.Get(s.TraceID())
	if !ok || td.Reason != ReasonSampled {
		t.Fatalf("rate-1 sampling: ok=%v reason=%q", ok, td.Reason)
	}

	tr0 := New(Config{SlowThreshold: time.Hour, SampleRate: 0})
	for i := 0; i < 100; i++ {
		s := tr0.StartRoot("never")
		s.End()
	}
	if tr0.Len() != 0 {
		t.Fatalf("rate-0 sampling retained %d traces", tr0.Len())
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := alwaysTracer()
	ctx, root := tr.Start(context.Background(), "request")
	root.SetAttr("tenant", "acme")

	ctx2, child := tr.Start(ctx, "phase")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child changed trace ID")
	}
	grand := FromContext(ctx2).Child("leaf")
	grand.SetInt("rows", 42)
	grand.End()
	child.End()
	root.AddCompleted("pre-measured", root.start, 3*time.Millisecond,
		map[string]string{"k": "v"}, false)
	root.End()

	td, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace not retained")
	}
	if td.Root != "request" || len(td.Spans) != 4 {
		t.Fatalf("root=%q spans=%d, want request/4", td.Root, len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if byName["request"].Parent != "" {
		t.Fatalf("root has a parent")
	}
	if byName["phase"].Parent != byName["request"].ID {
		t.Fatalf("phase not parented to request")
	}
	if byName["leaf"].Parent != byName["phase"].ID {
		t.Fatalf("leaf not parented to phase")
	}
	if byName["pre-measured"].Parent != byName["request"].ID {
		t.Fatalf("AddCompleted not parented to its span")
	}
	if byName["leaf"].Attrs["rows"] != "42" {
		t.Fatalf("SetInt lost: %v", byName["leaf"].Attrs)
	}
	if got := td.RootAttr("tenant"); got != "acme" {
		t.Fatalf("RootAttr tenant = %q", got)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := alwaysTracer()
	s := tr.StartRoot("once")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("double End stored %d traces", tr.Len())
	}
	td, _ := tr.Get(s.TraceID())
	if len(td.Spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(td.Spans))
	}
}

func TestMaxSpansTruncates(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour, SampleRate: 1, MaxSpans: 4})
	root := tr.StartRoot("big")
	for i := 0; i < 10; i++ {
		c := root.Child(fmt.Sprintf("c%d", i))
		c.End()
	}
	root.End()
	td, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace not retained")
	}
	if !td.Truncated {
		t.Fatalf("trace not marked truncated")
	}
	if len(td.Spans) > 4 {
		t.Fatalf("span budget not enforced: %d spans", len(td.Spans))
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour, SampleRate: 1, Capacity: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		s := tr.StartRoot(fmt.Sprintf("t%d", i))
		s.End()
		ids = append(ids, s.TraceID())
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for _, old := range ids[:2] {
		if _, ok := tr.Get(old); ok {
			t.Fatalf("evicted trace %s still retrievable", old)
		}
	}
	for _, cur := range ids[2:] {
		if _, ok := tr.Get(cur); !ok {
			t.Fatalf("recent trace %s lost", cur)
		}
	}
	snap := tr.Snapshot()
	if len(snap) != 3 || snap[0].Root != "t4" || snap[2].Root != "t2" {
		t.Fatalf("snapshot not newest-first: %+v", snap)
	}
}

func TestStartRemoteContinuesTraceparent(t *testing.T) {
	tr := alwaysTracer()
	const inID = "4bf92f3577b34da6a3ce929d0e0e4736"
	in := "00-" + inID + "-00f067aa0ba902b7-01"
	ctx, sp := tr.StartRemote(context.Background(), "request", in)
	if sp.TraceID() != inID {
		t.Fatalf("remote trace ID not reused: %s", sp.TraceID())
	}
	if FromContext(ctx) != sp {
		t.Fatalf("context does not carry the span")
	}
	out := sp.Traceparent()
	gotID, gotSpan, ok := ParseTraceparent(out)
	if !ok || gotID != inID || gotSpan != sp.SpanID() {
		t.Fatalf("outgoing traceparent %q does not round-trip", out)
	}
	sp.End()
	td, _ := tr.Get(inID)
	if td.RootAttr("remote_parent") != "00f067aa0ba902b7" {
		t.Fatalf("remote parent not recorded: %v", td.Spans)
	}

	// Malformed header: fresh trace, no error.
	_, sp2 := tr.StartRemote(context.Background(), "request", "garbage")
	if sp2.TraceID() == "" || sp2.TraceID() == inID {
		t.Fatalf("malformed traceparent mishandled: %q", sp2.TraceID())
	}
	sp2.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span
		"00-4bf92f3577b34da6a3ce929d0e0eXYZW-00f067aa0ba902b7-01",  // non-hex
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase (spec: lowercase only)
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := alwaysTracer()
	root := tr.StartRoot("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child(fmt.Sprintf("worker-%d", i))
			c.SetInt("i", int64(i))
			if i%3 == 0 {
				c.SetError(errors.New("flake"))
			}
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	td, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace not retained")
	}
	if len(td.Spans) != 17 {
		t.Fatalf("spans = %d, want 17", len(td.Spans))
	}
	if !td.Error || td.Reason != ReasonError {
		t.Fatalf("child error did not mark the trace: error=%v reason=%q", td.Error, td.Reason)
	}
}

func TestWriteTreeRenders(t *testing.T) {
	tr := alwaysTracer()
	root := tr.StartRoot("request")
	c := root.Child("match.query")
	c.SetAttr("planner", "cost")
	c.End()
	root.End()
	td, _ := tr.Get(root.TraceID())
	var b strings.Builder
	WriteTree(&b, td)
	out := b.String()
	for _, want := range []string{root.TraceID(), "request", "match.query", "planner=cost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	// Child renders deeper than root.
	rootLine := strings.Index(out, "\n  request")
	childLine := strings.Index(out, "\n    match.query")
	if rootLine < 0 || childLine < 0 || childLine < rootLine {
		t.Fatalf("tree indentation wrong:\n%s", out)
	}
}

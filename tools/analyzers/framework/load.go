package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Loader parses and type-checks packages without the go/packages driver
// (which lives in x/tools) and without network access. Import paths are
// resolved structurally: paths under the module prefix map into the
// module tree, everything else maps into GOROOT/src and is type-checked
// from source. Dependency packages are cached per Loader.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	deps map[string]*types.Package
}

// NewLoader builds a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot, modulePath string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		deps:       map[string]*types.Package{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("framework: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("framework: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewTypesInfo allocates the types.Info maps the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load parses and type-checks the package in dir. importPath names the
// package for the type checker; pass "" to derive it from the module
// layout. Test files (_test.go) are not loaded — the contracts bind the
// production sources.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			importPath = l.ModulePath
		} else {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: (*depImporter)(l)}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %w", importPath, err)
	}
	return &Package{Dir: dir, Path: importPath, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// depImporter resolves and source-type-checks dependency packages.
type depImporter Loader

func (im *depImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.deps[path]; ok {
		return p, nil
	}
	var dir string
	switch {
	case path == im.ModulePath:
		dir = im.ModuleRoot
	case strings.HasPrefix(path, im.ModulePath+"/"):
		dir = filepath.Join(im.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, im.ModulePath+"/")))
	default:
		dir = filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	fset := (*Loader)(im).Fset
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Dependencies only need their exported API shape; soft errors in
	// GOROOT sources (build-tag corner cases and the like) are ignored as
	// long as a usable package object comes back.
	conf := types.Config{Importer: im, FakeImportC: true, Error: func(error) {}}
	pkg, err := conf.Check(path, fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	pkg.MarkComplete()
	im.deps[path] = pkg
	return pkg, nil
}

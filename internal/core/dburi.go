package core

import (
	"fmt"
	"strconv"
	"strings"
)

// DBUri machinery (§5). A reified triple is named by a DBUri resource that
// points directly at its rdf_link$ row:
//
//	/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]
//
// Storing this one <dburi, rdf:type, rdf:Statement> triple replaces the
// four-triple reification quad — the paper's streamlined reification.

const (
	dbURIPrefix = "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID="
	dbURISuffix = "]"
)

// DBUri returns the DBUri resource string for a triple ID.
func DBUri(linkID int64) string {
	return dbURIPrefix + strconv.FormatInt(linkID, 10) + dbURISuffix
}

// ParseDBUri extracts the LINK_ID from a DBUri resource string; ok is
// false when s is not a DBUri.
func ParseDBUri(s string) (int64, bool) {
	rest, ok := strings.CutPrefix(s, dbURIPrefix)
	if !ok {
		return 0, false
	}
	num, ok := strings.CutSuffix(rest, dbURISuffix)
	if !ok {
		return 0, false
	}
	id, err := strconv.ParseInt(num, 10, 64)
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// ResolveDBUri dereferences a DBUri to the triple it points at — the
// DBUriType "direct link to data in a table" (§5).
func (s *Store) ResolveDBUri(uri string) (Triple, error) {
	id, ok := ParseDBUri(uri)
	if !ok {
		return Triple{}, fmt.Errorf("core: %q is not a DBUri", uri)
	}
	return s.GetTripleByID(id)
}

// Quickstart walks the paper's §4.3 application recipe end to end:
//
//  1. create an application table with an SDO_RDF_TRIPLE_S column,
//  2. create an RDF model,
//  3. insert triples through the object constructor,
//  4. read them back through the member functions, and
//  5. query with SDO_RDF_MATCH.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

func main() {
	// The central schema: one universe for all RDF data (§1).
	store := core.New()

	// Namespace aliases; the paper's examples use gov: and id: prefixes.
	aliases := rdfterm.Default().With(
		rdfterm.Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		rdfterm.Alias{Prefix: "id", Namespace: "http://www.us.id#"},
	)

	// Step 1: CREATE TABLE ciadata (id NUMBER, triple SDO_RDF_TRIPLE_S);
	appDB := reldb.NewDatabase("APP")
	ciadata, err := core.CreateApplicationTable(appDB, store, "ciadata",
		reldb.Column{Name: "ID", Kind: reldb.KindInt})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: EXECUTE SDO_RDF.CREATE_RDF_MODEL('cia', 'ciadata', 'triple');
	if _, err := store.CreateRDFModel("cia", "ciadata", "triple"); err != nil {
		log.Fatal(err)
	}

	// Step 3: INSERT INTO ciadata VALUES (1, SDO_RDF_TRIPLE_S('cia', ...));
	rows := [][3]string{
		{"gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"gov:files", "gov:terrorSuspect", "id:JaneDoe"},
		{"id:JohnDoe", "gov:enteredCountry", "June-20-2000"},
	}
	for i, r := range rows {
		ts, err := ciadata.InsertTriple([]reldb.Value{reldb.Int(int64(i + 1))},
			"cia", r[0], r[1], r[2], aliases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("inserted %s\n", ts)
	}

	// Step 4: member functions on rows read back from the table.
	fmt.Println("\napplication table contents via GET_TRIPLE():")
	ciadata.Scan(func(_ reldb.RowID, user []reldb.Value, ts core.TripleS) bool {
		tr, err := ts.GetTriple()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  id=%s  %s\n", user[0], tr)
		return true
	})

	// Node reuse: gov:files appears in two triples but is one node (§4).
	fmt.Printf("\nstore: %d triples, %d distinct values, %d graph nodes\n",
		store.TotalTriples(), store.NumValues(), store.NumNodes())

	// Step 5: SDO_RDF_MATCH (§6.1).
	rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?who)`, match.Options{
		Models:  []string{"cia"},
		Aliases: aliases,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSDO_RDF_MATCH('(gov:files gov:terrorSuspect ?who)'):")
	for i := 0; i < rs.Len(); i++ {
		who, _ := rs.Get(i, "who")
		fmt.Printf("  ?who = %s\n", aliases.Compact(who.Value))
	}

	// IS_TRIPLE (§6).
	_, ok, err := store.IsTriple("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", aliases)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIS_TRIPLE(gov:files, gov:terrorSuspect, id:JohnDoe) = %v\n", ok)
}

package reldb

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// buildOrders creates two joined tables: customers(ID, NAME) and
// orders(ID, CUST_ID, AMOUNT).
func buildOrders(t *testing.T) (*Table, *Table) {
	t.Helper()
	cust := NewTable(NewSchema("customers",
		Column{Name: "ID", Kind: KindInt},
		Column{Name: "NAME", Kind: KindString},
	))
	if _, err := cust.CreateIndex("cust_pk", true, "ID"); err != nil {
		t.Fatal(err)
	}
	orders := NewTable(NewSchema("orders",
		Column{Name: "ID", Kind: KindInt},
		Column{Name: "CUST_ID", Kind: KindInt},
		Column{Name: "AMOUNT", Kind: KindInt},
	))
	if _, err := orders.CreateIndex("ord_cust", false, "CUST_ID"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		cust.Insert(Row{Int(i), String_(fmt.Sprintf("cust%d", i))})
	}
	for i := int64(0); i < 20; i++ {
		orders.Insert(Row{Int(i), Int(i % 5), Int(i * 10)})
	}
	return cust, orders
}

func TestTableScanAndCollect(t *testing.T) {
	cust, _ := buildOrders(t)
	rows := Collect(NewTableScan(cust))
	if len(rows) != 5 {
		t.Fatalf("scan returned %d rows", len(rows))
	}
}

func TestIndexEqScan(t *testing.T) {
	_, orders := buildOrders(t)
	it := NewIndexEq(orders, orders.MustIndex("ord_cust"), Key{Int(2)})
	rows := Collect(it)
	if len(rows) != 4 {
		t.Fatalf("index eq returned %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r[1].Int64() != 2 {
			t.Fatalf("wrong row %v", r)
		}
	}
}

func TestIndexRangeScanIter(t *testing.T) {
	_, orders := buildOrders(t)
	it := NewIndexRange(orders, orders.MustIndex("ord_cust"), Key{Int(1)}, Key{Int(2)})
	if got := Count(it); got != 8 {
		t.Fatalf("range scan = %d rows, want 8", got)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	_, orders := buildOrders(t)
	it := NewLimit(
		NewProject(
			NewFilter(NewTableScan(orders), func(r Row) bool { return r[2].Int64() >= 100 }),
			2, 1),
		3)
	rows := Collect(it)
	if len(rows) != 3 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 || r[0].Int64() < 100 {
			t.Fatalf("bad projected row %v", r)
		}
	}
}

func TestIndexJoin(t *testing.T) {
	cust, orders := buildOrders(t)
	// orders ⋈ customers on CUST_ID = ID via the customer PK index.
	it := NewIndexJoin(NewTableScan(orders), cust, cust.MustIndex("cust_pk"), ColKey(1))
	rows := Collect(it)
	if len(rows) != 20 {
		t.Fatalf("join returned %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		// row = orders(3 cols) ++ customers(2 cols)
		if len(r) != 5 {
			t.Fatalf("join row arity = %d", len(r))
		}
		if r[1].Int64() != r[3].Int64() {
			t.Fatalf("join key mismatch in %v", r)
		}
		if want := fmt.Sprintf("cust%d", r[1].Int64()); r[4].Str() != want {
			t.Fatalf("joined name %q, want %q", r[4].Str(), want)
		}
	}
}

func TestHashJoinMatchesIndexJoin(t *testing.T) {
	cust, orders := buildOrders(t)
	hj := Collect(NewHashJoin(NewTableScan(orders), ColKey(1), NewTableScan(cust), ColKey(0)))
	ij := Collect(NewIndexJoin(NewTableScan(orders), cust, cust.MustIndex("cust_pk"), ColKey(1)))
	if len(hj) != len(ij) {
		t.Fatalf("hash join %d rows, index join %d rows", len(hj), len(ij))
	}
	canon := func(rows []Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.String()
			}
			out[i] = strings.Join(parts, "|")
		}
		sort.Strings(out)
		return out
	}
	h, ix := canon(hj), canon(ij)
	for i := range h {
		if h[i] != ix[i] {
			t.Fatalf("row %d differs: hash=%q index=%q", i, h[i], ix[i])
		}
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	cust, orders := buildOrders(t)
	it := NewHashJoin(NewTableScan(orders),
		func(Row) Key { return Key{Int(999)} },
		NewTableScan(cust), ColKey(0))
	if got := Count(it); got != 0 {
		t.Fatalf("join with impossible key returned %d rows", got)
	}
}

func TestPartitionScanIter(t *testing.T) {
	s := NewSchema("pl",
		Column{Name: "P", Kind: KindInt},
		Column{Name: "V", Kind: KindInt},
	)
	tb := NewPartitionedTable(s, "P")
	for i := int64(0); i < 12; i++ {
		tb.Insert(Row{Int(i % 4), Int(i)})
	}
	it, err := NewPartitionScan(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(it)
	if len(rows) != 3 {
		t.Fatalf("partition scan = %d rows", len(rows))
	}
}

func TestSliceIterAndFormatRows(t *testing.T) {
	rows := []Row{{String_("id:JohnDoe"), String_("Brooklyn, NY")}}
	got := FormatRows([]string{"TERROR_WATCH_LIST", "LOCATION"}, rows)
	if !strings.Contains(got, "TERROR_WATCH_LIST") || !strings.Contains(got, "id:JohnDoe") {
		t.Fatalf("FormatRows output:\n%s", got)
	}
	if Count(NewSliceIter(rows)) != 1 {
		t.Fatal("slice iter count wrong")
	}
}

func TestRowFetchSkipsDeleted(t *testing.T) {
	cust, _ := buildOrders(t)
	it := NewTableScan(cust) // snapshots IDs
	cust.Delete(0)
	rows := Collect(it)
	if len(rows) != 4 {
		t.Fatalf("scan after delete returned %d rows, want 4", len(rows))
	}
}

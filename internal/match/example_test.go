package match_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/match"
	"repro/internal/rdfterm"
)

// Example reproduces the Figure 8 inference query: the intel_rb rulebase
// makes anyone who performed a "bombing" a terror suspect, a rules index
// precomputes the entailment, and SDO_RDF_MATCH reads base + inferred
// triples across all three agency models.
func Example() {
	store := core.New()
	gov := []rdfterm.Alias{
		{Prefix: "gov", Namespace: "http://www.us.gov#"},
		{Prefix: "id", Namespace: "http://www.us.id#"},
	}
	aliases := rdfterm.Default().With(gov...)
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, err := store.CreateRDFModel(m, "", ""); err != nil {
			log.Fatal(err)
		}
	}
	store.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", aliases)
	store.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe", aliases)
	store.NewTripleS("dhs", "id:JimDoe", "gov:terrorAction", "bombing", aliases)

	cat := inference.NewCatalog(store)
	cat.CreateRulebase("intel_rb")
	cat.AddRule("intel_rb", inference.Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    gov,
	})
	if _, err := cat.CreateRulesIndex("rdfs_rix_intel",
		[]string{"cia", "dhs", "fbi"},
		[]string{inference.RDFSRulebaseName, "intel_rb"}); err != nil {
		log.Fatal(err)
	}

	rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?name)`, match.Options{
		Models:    []string{"cia", "dhs", "fbi"},
		Rulebases: []string{inference.RDFSRulebaseName, "intel_rb"},
		Resolver:  cat,
		Aliases:   aliases,
		Distinct:  true,
		OrderBy:   []string{"name"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < rs.Len(); i++ {
		name, _ := rs.Get(i, "name")
		fmt.Println(aliases.Compact(name.Value))
	}
	// Output:
	// id:JaneDoe
	// id:JimDoe
	// id:JohnDoe
}

// Example_filter shows the filter argument of SDO_RDF_MATCH.
func Example_filter() {
	store := core.New()
	store.CreateRDFModel("m", "", "")
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
	store.NewTripleS("m", "x:alice", "x:age", `"31"^^xsd:int`, a)
	store.NewTripleS("m", "x:bob", "x:age", `"17"^^xsd:int`, a)

	rs, _ := match.Match(store, `(?who x:age ?age)`, match.Options{
		Models:  []string{"m"},
		Aliases: a,
		Filter:  `?age >= 18`,
	})
	for i := 0; i < rs.Len(); i++ {
		fmt.Println(rs.Strings(i)[0])
	}
	// Output:
	// http://x#alice
}

// Package badspan holds span must-end violations releasecheck flags: a
// span born from Start/StartRoot/Child leaks its trace buffer on at
// least one path in each function here.
package badspan

import (
	"context"

	"badspan/trace"
)

func work() error { return nil }

// earlyReturn ends the span on the slow path but leaks it on the fast
// one.
func earlyReturn(tr *trace.Tracer, fast bool) error {
	sp := tr.StartRoot("query")
	if fast {
		return nil // want `trace span "sp" may never be ended on this path`
	}
	sp.End()
	return work()
}

// childLeak ends the root but not the child — SetAttr is use of the
// handle, not an end. The function falls off the end, so the report
// lands at the birth site.
func childLeak(tr *trace.Tracer) {
	sp := tr.StartRoot("insert")
	defer sp.End()
	child := sp.Child("insert.links") // want `trace span "child" may never be ended on this path`
	child.SetAttr("rows", "10")
}

// reassign overwrites a live span; the first one's buffer leaks even
// though the name is eventually ended.
func reassign(tr *trace.Tracer) {
	sp := tr.StartRoot("first")
	sp = tr.StartRoot("second") // want `trace span "sp" reassigned before being ended`
	sp.End()
}

// discard drops the span half of Start on the floor; nothing can ever
// end it.
func discard(tr *trace.Tracer, ctx context.Context) context.Context {
	ctx, _ = tr.Start(ctx, "request") // want `trace span discarded with the blank identifier`
	return ctx
}

// goroutineWithout spawns a goroutine that does not take the span with
// it and returns with the span still open.
func goroutineWithout(tr *trace.Tracer, ctx context.Context, async bool) error {
	_, sp := tr.StartRemote(ctx, "request", "")
	if !async {
		defer sp.End()
		return work()
	}
	go func() {
		_ = work()
	}()
	return nil // want `trace span "sp" may never be ended on this path`
}

// Package ctxcheck enforces context threading on the read surface. The
// serving stack's cancellation story (SERVING.md) only works if the
// request context reaches every blocking callee: a handler that calls
// the context-free variant of an engine entry point silently loses the
// deadline, and a context.Background() deep in a request path detaches
// everything below it from admission timeouts and client disconnects.
//
// Three rules:
//
//  1. A function that receives a context.Context (directly or from an
//     enclosing function literal) must not mint fresh roots: calls to
//     context.Background()/context.TODO() there are flagged everywhere
//     in the module.
//  2. Inside the request-path packages listed in StrictPackages the ban
//     is unconditional — Background/TODO are flagged in any production
//     function, because everything in those packages runs downstream of
//     a request context. Justified process-lifetime roots carry a
//     //repro:vet-ignore with the reason.
//  3. A function holding a context must thread it: calling X(...) when a
//     sibling XCtx/XContext taking a context exists (same package, or
//     the receiver's method set) is flagged — the caller had a context
//     and chose the variant that drops it.
//
// Test files are exempt (SkipTestFiles): tests are their own roots.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/guard"
)

var Analyzer = &framework.Analyzer{
	Name: "ctxcheck",
	Doc: "check that request paths thread their context: no fresh " +
		"Background/TODO roots, no calls to context-free variants when a " +
		"Ctx/Context sibling exists",
	Run:           run,
	SkipTestFiles: true,
}

// StrictPackages lists the import paths where rule 2 applies: every
// function in these packages is presumed to run under a request context.
// A var, not a const, so the fixture tests can enlist themselves.
var StrictPackages = map[string]bool{
	"repro/internal/match":  true,
	"repro/internal/server": true,
	"repro/internal/ndm":    true,
}

func run(pass *framework.Pass) error {
	strict := StrictPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		checkFuncs(pass, f, strict)
	}
	return nil
}

// checkFuncs walks the file tracking whether a context is in scope for
// the function (or literal) currently being visited.
func checkFuncs(pass *framework.Pass, f *ast.File, strict bool) {
	// ctxDepth > 0 while inside a function whose own parameters (or an
	// enclosing literal's captures) provide a context.
	var walk func(n ast.Node, haveCtx bool)
	walk = func(n ast.Node, haveCtx bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m == n {
					return true
				}
				walk(m, hasCtxParam(pass, m.Type))
				return false
			case *ast.FuncLit:
				// A literal inherits the enclosing scope's context and
				// may add its own parameter.
				walk(m.Body, haveCtx || hasCtxParam(pass, m.Type))
				return false
			case *ast.CallExpr:
				checkCall(pass, m, haveCtx, strict)
			}
			return true
		})
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			walk(fd, hasCtxParam(pass, fd.Type))
		}
	}
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, haveCtx, strict bool) {
	if name, ok := isContextRoot(pass, call); ok {
		switch {
		case haveCtx:
			pass.Reportf(call.Pos(),
				"context.%s inside a function that already has a context; derive from the caller's ctx instead of starting a fresh root", name)
		case strict:
			pass.Reportf(call.Pos(),
				"context.%s in a request-path package (%s); derive from the request context, or vet-ignore with the reason this is a process-lifetime root", name, pass.Pkg.Path())
		}
		return
	}
	if !haveCtx {
		return
	}
	// Rule 3: the caller holds a context; does this call drop it?
	if variant := ctxVariantOf(pass, call); variant != "" {
		pass.Reportf(call.Pos(),
			"call discards the caller's context; use %s so cancellation and deadlines propagate", variant)
	}
}

// isContextRoot matches context.Background() / context.TODO().
func isContextRoot(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// ctxVariantOf returns the name of a context-taking sibling of the
// callee ("FindCtx", "store.FindContext") when the call neither takes
// nor receives a context, or "" when the call is fine.
func ctxVariantOf(pass *framework.Pass, call *ast.CallExpr) string {
	// Already threading a context? Fine.
	for _, a := range call.Args {
		if tv, ok := pass.TypesInfo.Types[a]; ok && isContextType(tv.Type) {
			return ""
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		if !ok || fn.Pkg() == nil || takesContext(fn) {
			return ""
		}
		for _, suffix := range []string{"Ctx", "Context"} {
			if sib, ok := pass.Pkg.Scope().Lookup(fn.Name() + suffix).(*types.Func); ok && takesContext(sib) {
				return sib.Name()
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || takesContext(fn) {
			return ""
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			// Qualified call into another package: look for the sibling
			// in the callee's scope.
			for _, suffix := range []string{"Ctx", "Context"} {
				if sib, ok := fn.Pkg().Scope().Lookup(fn.Name() + suffix).(*types.Func); ok && takesContext(sib) {
					return fn.Pkg().Name() + "." + sib.Name()
				}
			}
			return ""
		}
		// Method call: search the receiver's method set.
		rtv, ok := pass.TypesInfo.Types[fun.X]
		if !ok {
			return ""
		}
		for _, suffix := range []string{"Ctx", "Context"} {
			obj, _, _ := types.LookupFieldOrMethod(rtv.Type, true, pass.Pkg, fn.Name()+suffix)
			if sib, ok := obj.(*types.Func); ok && takesContext(sib) {
				if tn := guard.NamedOf(rtv.Type); tn != nil {
					return tn.Name() + "." + sib.Name()
				}
				return sib.Name()
			}
		}
	}
	return ""
}

// takesContext reports whether any parameter of fn is a context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[p.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	tn := guard.NamedOf(t)
	return tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context"
}

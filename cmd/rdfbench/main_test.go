package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// knobTable renders the flag set as the markdown table SERVING.md embeds
// between the knob-table markers (same convention as cmd/rdfserve).
func knobTable(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Description |\n")
	b.WriteString("|------|---------|-------------|\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s |\n", f.Name, def, f.Usage)
	})
	return strings.TrimSpace(b.String())
}

// TestServingKnobTableInSync keeps the SERVING.md rdfbench knob table
// byte-identical to what the binary's flag set produces, in both
// directions: every flag documented, every documented flag real.
func TestServingKnobTableInSync(t *testing.T) {
	fs, _ := newFlagSet()
	want := knobTable(fs)
	data, err := os.ReadFile(filepath.Join("..", "..", "SERVING.md"))
	if err != nil {
		t.Fatalf("reading SERVING.md: %v", err)
	}
	doc := string(data)
	begin := "<!-- knob-table:rdfbench:begin -->"
	end := "<!-- knob-table:rdfbench:end -->"
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("SERVING.md is missing the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(doc[i+len(begin) : j])
	if got != want {
		t.Fatalf("SERVING.md rdfbench knob table out of sync; regenerate it as:\n%s", want)
	}
}

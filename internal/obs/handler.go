package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Health is the /healthz payload. Supervised deployments map the
// supervisor state machine onto it; plain CLIs report a static healthy
// state. Unhealthy answers with HTTP 503 so load balancers and probes
// need no JSON parsing.
type Health struct {
	Healthy bool   `json:"healthy"`
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
	// Detail carries subsystem-specific context (recovery counts, scrub
	// stats, component name).
	Detail map[string]any `json:"detail,omitempty"`
}

// NewHandler builds the admin surface over a registry:
//
//	GET /metrics      Prometheus text exposition of every instrument
//	GET /healthz      JSON Health (503 when not healthy)
//	GET /events       JSON array of retained events, oldest first (?n= limits to the newest n)
//	GET /debug/pprof  stdlib profiling endpoints
//
// health may be nil (reports a static healthy state); reg may be nil
// (empty exposition). The handler is an http.Handler; embed it under a
// net/http server on an operator-only address — it exposes pprof, which
// can run CPU profiles on demand.
func NewHandler(reg *Registry, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Healthy: true, State: "Healthy"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		events := reg.Events().Snapshot()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

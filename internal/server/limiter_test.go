package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterGrantsUpToCapacity(t *testing.T) {
	l := NewLimiter(4, 0, 0)
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := l.TryAcquire("", 1)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	if _, err := l.TryAcquire("", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity acquire = %v, want ErrQueueFull", err)
	}
	releases[0]()
	if _, err := l.TryAcquire("", 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	for _, r := range releases[1:] {
		r()
	}
	if st := l.Stats(); st.InUse != 1 {
		t.Fatalf("in-use = %d, want 1", st.InUse)
	}
}

func TestLimiterWeights(t *testing.T) {
	l := NewLimiter(8, 0, 0)
	r1, err := l.TryAcquire("", 6)
	if err != nil {
		t.Fatal(err)
	}
	// 2 units left: weight 4 must be rejected, weight 2 admitted.
	if _, err := l.TryAcquire("", 4); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("weight-4 acquire = %v, want ErrQueueFull", err)
	}
	r2, err := l.TryAcquire("", 2)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	// A weight above capacity clamps rather than deadlocking.
	r3, err := l.TryAcquire("", 100)
	if err != nil {
		t.Fatalf("clamped over-capacity acquire: %v", err)
	}
	r3()
}

func TestLimiterQueueFIFO(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	hold, err := l.TryAcquire("", 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	starts := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			starts <- struct{}{}
			r, err := l.Acquire(context.Background(), "", 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
		<-starts
		// Serialize enqueue order so FIFO is observable.
		for l.Stats().Queued < i {
			time.Sleep(time.Millisecond)
		}
	}
	hold()
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v, want [1 2 3]", order)
	}
}

func TestLimiterQueueBound(t *testing.T) {
	l := NewLimiter(1, 2, 0)
	hold, _ := l.TryAcquire("", 1)
	defer hold()
	ctx := context.Background()
	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			cctx, cancel := context.WithTimeout(ctx, time.Minute)
			defer cancel()
			_, err := l.Acquire(cctx, "", 1)
			errs <- err
		}()
	}
	for l.Stats().Queued < 2 {
		time.Sleep(time.Millisecond)
	}
	// Third waiter: queue full, immediate rejection.
	if _, err := l.Acquire(ctx, "", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue-full acquire = %v, want ErrQueueFull", err)
	}
}

func TestLimiterWaitTimeout(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	hold, _ := l.TryAcquire("", 1)
	defer hold()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.Acquire(ctx, "", 1)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("expired wait = %v, want ErrWaitTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("wait did not respect its deadline")
	}
	if st := l.Stats(); st.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", st)
	}
}

func TestLimiterTenantCap(t *testing.T) {
	l := NewLimiter(8, 4, 2)
	rA1, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rA2, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a is at its cap; global capacity remains.
	if _, err := l.TryAcquire("a", 1); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-cap tenant acquire = %v, want ErrTenantLimit", err)
	}
	// Tenant b is unaffected.
	rB, err := l.TryAcquire("b", 2)
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	rA1()
	rA2()
	rB()
}

// A queued waiter blocked only by its tenant cap is skipped over, not a
// barrier: later requests from other tenants flow past it, and it is
// granted once its own tenant frees a slot.
func TestLimiterTenantBlockedWaiterIsSkipped(t *testing.T) {
	l := NewLimiter(4, 4, 2)
	rA1, err := l.TryAcquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rX, err := l.TryAcquire("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	rY, err := l.TryAcquire("y", 1) // capacity saturated: 1+2+1
	if err != nil {
		t.Fatal(err)
	}
	defer rY()
	// Two tenant-a waiters queue behind the saturated capacity (both
	// pass the entry cap check: only 1 unit of tenant a is granted).
	grants := make(chan func(), 2)
	var granted atomic.Int32
	for i := 0; i < 2; i++ {
		go func() {
			r, err := l.Acquire(context.Background(), "a", 1)
			if err != nil {
				t.Errorf("tenant-a waiter: %v", err)
				return
			}
			granted.Add(1)
			grants <- r
		}()
		for l.Stats().Queued < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	// Free 2 units: the first a-waiter is granted (a reaches its cap of
	// 2); the second fits the remaining capacity but stays tenant-blocked.
	rX()
	var first func()
	select {
	case first = <-grants:
	case <-time.After(2 * time.Second):
		t.Fatal("first tenant-a waiter never granted")
	}
	if granted.Load() != 1 {
		t.Fatalf("granted = %d, want 1 (second waiter is tenant-blocked)", granted.Load())
	}
	// Tenant b must flow past the tenant-blocked waiter at the head.
	rB, err := l.TryAcquire("b", 1)
	if err != nil {
		t.Fatalf("tenant b behind tenant-blocked waiter: %v", err)
	}
	rB()
	// Freeing a tenant-a slot grants the blocked waiter.
	rA1()
	select {
	case r := <-grants:
		r()
	case <-time.After(2 * time.Second):
		t.Fatal("tenant-blocked waiter never granted after tenant release")
	}
	first()
	rY()
	if st := l.Stats(); st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(16, 64, 0)
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	var peak atomic.Int64
	var cur atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			w := int64(1 + i%4)
			r, err := l.Acquire(ctx, "", w)
			if err != nil {
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			if v := cur.Add(w); v > peak.Load() {
				peak.Store(v)
			}
			time.Sleep(time.Millisecond)
			cur.Add(-w)
			r()
		}(i)
	}
	wg.Wait()
	if peak.Load() > 16 {
		t.Fatalf("in-flight weight peaked at %d, capacity 16", peak.Load())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if st := l.Stats(); st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
	t.Logf("admitted %d, rejected %d, peak weight %d", admitted.Load(), rejected.Load(), peak.Load())
}

// Package reify implements the paper's quad-conversion API (§5): "A Java
// API is provided for reading reification quads and converting them into
// reified statements in Oracle."
//
// The Loader reads an N-Triples stream, recognizes complete reification
// quads
//
//	<R, rdf:type, rdf:Statement>
//	<R, rdf:subject, S>
//	<R, rdf:predicate, P>
//	<R, rdf:object, O>
//
// and folds each into the streamlined representation: the base triple
// <S,P,O> plus a single <DBUri, rdf:type, rdf:Statement> row. Statements
// that mention the quad resource R are rewritten to reference the DBUri.
// Incomplete quads are dropped, reported, or inserted verbatim, per the
// configured policy (the paper's "deleted, output to a file or inserted
// into the database like other triples").
//
// Faithful to §7.3, the loader reads the entire input before inserting
// ("the entire input file must be read before inserting triples into the
// database") — quad members may arrive in any order.
package reify

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

// IncompletePolicy selects what happens to incomplete reification quads.
type IncompletePolicy int

// Policies for incomplete quads (§5).
const (
	// DropIncomplete discards the partial quad's triples.
	DropIncomplete IncompletePolicy = iota
	// InsertIncomplete stores the partial quad's triples verbatim.
	InsertIncomplete
	// ReportIncomplete writes the partial quad's triples to Report (and
	// drops them).
	ReportIncomplete
)

// OrigResourceProperty links a DBUri to the original quad resource URI
// when Loader.KeepOriginalURIs is set ("the user also specifies whether
// URIs replaced by the DBUriType should be stored").
const OrigResourceProperty = "urn:oracle:rdf:origResource"

// Loader folds reification quads while bulk-loading into a store model.
type Loader struct {
	Store  *core.Store
	Model  string
	Policy IncompletePolicy
	// Report receives incomplete-quad triples in N-Triples syntax when
	// Policy is ReportIncomplete.
	Report io.Writer
	// KeepOriginalURIs records <DBUri, origResource, R> for every folded
	// quad.
	KeepOriginalURIs bool
	// Workers is the number of parallel N-Triples parse workers Load
	// uses (the internal/load pipeline). 0 or 1 parses serially; < 0
	// uses GOMAXPROCS.
	Workers int
	// BatchSize, when > 1, inserts non-quad triples through
	// Store.InsertBatch in groups of BatchSize — one write-lock
	// acquisition and one WAL commit point per group, instead of one
	// per triple.
	BatchSize int
}

// Stats summarizes one load.
type Stats struct {
	// Read is the number of triples parsed from the input.
	Read int
	// Inserted is the number of base triples stored (excluding reification
	// rows the fold generates).
	Inserted int
	// QuadsFolded is the number of complete reification quads converted to
	// DBUri reifications.
	QuadsFolded int
	// AssertionsRewritten counts statements whose reference to a quad
	// resource was rewritten to the DBUri.
	AssertionsRewritten int
	// Incomplete counts partial quads handled by the policy.
	Incomplete int
}

// quad accumulates the four reification statements of one resource.
type quad struct {
	hasType bool
	sub     *rdfterm.Term
	pred    *rdfterm.Term
	obj     *rdfterm.Term
	extras  []ntriples.Triple // duplicate quad-member statements
}

func (q *quad) complete() bool {
	return q.hasType && q.sub != nil && q.pred != nil && q.obj != nil
}

// Load reads all triples from r and loads them into the model. The
// entire input is read before inserting (§7.3: quad members may arrive
// in any order); with Workers set, parsing fans out across the
// internal/load pipeline.
func (l *Loader) Load(r io.Reader) (Stats, error) {
	var stats Stats
	if l.Store == nil || l.Model == "" {
		return stats, fmt.Errorf("reify: Loader needs Store and Model")
	}
	workers := l.Workers
	if workers < 0 {
		workers = 0 // load.Options: 0 → GOMAXPROCS
	} else if workers == 0 {
		workers = 1 // Loader default: serial
	}
	triples, err := load.Parse(r, load.Options{Workers: workers})
	if err != nil {
		return stats, err
	}
	stats.Read = len(triples)
	return l.loadParsed(triples, stats)
}

// LoadTriples loads an already-parsed batch.
func (l *Loader) LoadTriples(triples []ntriples.Triple) (Stats, error) {
	return l.loadParsed(triples, Stats{Read: len(triples)})
}

func (l *Loader) loadParsed(triples []ntriples.Triple, stats Stats) (Stats, error) {
	// Pass 1: gather quad candidates keyed by resource (URI or blank).
	quads := map[rdfterm.Term]*quad{}
	var rest []ntriples.Triple
	for _, t := range triples {
		if member, res := quadMember(t); member {
			q := quads[res]
			if q == nil {
				q = &quad{}
				quads[res] = q
			}
			switch t.Predicate.Value {
			case rdfterm.RDFType:
				if q.hasType {
					q.extras = append(q.extras, t)
				}
				q.hasType = true
			case rdfterm.RDFSubject:
				if q.sub != nil {
					q.extras = append(q.extras, t)
				} else {
					o := t.Object
					q.sub = &o
				}
			case rdfterm.RDFPredicate:
				if q.pred != nil {
					q.extras = append(q.extras, t)
				} else {
					o := t.Object
					q.pred = &o
				}
			case rdfterm.RDFObject:
				if q.obj != nil {
					q.extras = append(q.extras, t)
				} else {
					o := t.Object
					q.obj = &o
				}
			}
			continue
		}
		rest = append(rest, t)
	}

	// Pass 2: fold complete quads; base triples become indirect statements
	// unless also asserted directly in the input. Quad resources are
	// processed in sorted order so a load is deterministic: the same
	// input always assigns the same VALUE_IDs and LINK_IDs, and two
	// stores loaded from the same file are byte-identical.
	asserted := map[string]bool{}
	for _, t := range rest {
		asserted[tripleKey(t)] = true
	}
	resources := make([]rdfterm.Term, 0, len(quads))
	for res := range quads {
		resources = append(resources, res)
	}
	sort.Slice(resources, func(i, j int) bool { return resources[i].Compare(resources[j]) < 0 })
	dburiOf := map[rdfterm.Term]string{}
	for _, res := range resources {
		q := quads[res]
		if !q.complete() {
			stats.Incomplete++
			if err := l.handleIncomplete(res, q, &stats); err != nil {
				return stats, err
			}
			continue
		}
		base := ntriples.Triple{Subject: *q.sub, Predicate: *q.pred, Object: *q.obj}
		var ts core.TripleS
		var err error
		if asserted[tripleKey(base)] {
			// Will be (or has been) inserted as a direct statement below;
			// insert now so the fold sees the right context.
			ts, err = l.Store.InsertTerms(l.Model, base.Subject, base.Predicate, base.Object)
			if err != nil {
				return stats, err
			}
			// Avoid double insert in pass 3 (COST would double-count).
			asserted["folded|"+tripleKey(base)] = true
		} else {
			ts, err = l.insertImplied(base)
			if err != nil {
				return stats, err
			}
		}
		if _, err := l.Store.Reify(l.Model, ts.TID); err != nil {
			return stats, err
		}
		stats.QuadsFolded++
		dburiOf[res] = core.DBUri(ts.TID)
		if l.KeepOriginalURIs {
			if _, err := l.Store.InsertTerms(l.Model,
				rdfterm.NewURI(core.DBUri(ts.TID)),
				rdfterm.NewURI(OrigResourceProperty),
				res); err != nil {
				return stats, err
			}
		}
	}

	// Pass 3: insert remaining triples, rewriting references to folded
	// quad resources into DBUris (assertions about reified statements).
	// With BatchSize > 1 the inserts go through Store.InsertBatch —
	// interning, link insertion, and the WAL commit are amortized over
	// each batch instead of paid per triple.
	var batch []core.BatchTriple
	batchRewrites := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := l.Store.InsertBatch(l.Model, batch); err != nil {
			return err
		}
		stats.Inserted += len(batch)
		stats.AssertionsRewritten += batchRewrites
		batch = batch[:0]
		batchRewrites = 0
		return nil
	}
	for _, t := range rest {
		if asserted["folded|"+tripleKey(t)] {
			// The base triple was already inserted during folding; skip the
			// duplicate so COST reflects one application reference.
			delete(asserted, "folded|"+tripleKey(t))
			stats.Inserted++
			continue
		}
		sub, obj := t.Subject, t.Object
		rewritten := false
		if d, ok := dburiOf[sub]; ok {
			sub = rdfterm.NewURI(d)
			rewritten = true
		}
		if d, ok := dburiOf[obj]; ok {
			obj = rdfterm.NewURI(d)
			rewritten = true
		}
		if l.BatchSize > 1 {
			batch = append(batch, core.BatchTriple{Subject: sub, Predicate: t.Predicate, Object: obj})
			if rewritten {
				batchRewrites++
			}
			if len(batch) >= l.BatchSize {
				if err := flush(); err != nil {
					return stats, err
				}
			}
			continue
		}
		if _, err := l.Store.InsertTerms(l.Model, sub, t.Predicate, obj); err != nil {
			return stats, err
		}
		stats.Inserted++
		if rewritten {
			stats.AssertionsRewritten++
		}
	}
	return stats, flush()
}

// insertImplied inserts the base triple of a reification as an indirect
// statement (CONTEXT=I), like the paper's implied statements (§5.2). It
// reuses AssertImplied's machinery minus the assertion.
func (l *Loader) insertImplied(base ntriples.Triple) (core.TripleS, error) {
	return l.Store.InsertImplied(l.Model, base.Subject, base.Predicate, base.Object)
}

func (l *Loader) handleIncomplete(res rdfterm.Term, q *quad, stats *Stats) error {
	emit := func(t ntriples.Triple) error {
		switch l.Policy {
		case InsertIncomplete:
			if _, err := l.Store.InsertTerms(l.Model, t.Subject, t.Predicate, t.Object); err != nil {
				return err
			}
			stats.Inserted++
		case ReportIncomplete:
			if l.Report != nil {
				if _, err := fmt.Fprintln(l.Report, t.String()); err != nil {
					return err
				}
			}
		}
		return nil
	}
	rebuild := func(pred string, obj *rdfterm.Term) error {
		if obj == nil {
			return nil
		}
		return emit(ntriples.Triple{Subject: res, Predicate: rdfterm.NewURI(pred), Object: *obj})
	}
	if q.hasType {
		stmt := rdfterm.NewURI(rdfterm.RDFStatement)
		if err := rebuild(rdfterm.RDFType, &stmt); err != nil {
			return err
		}
	}
	if err := rebuild(rdfterm.RDFSubject, q.sub); err != nil {
		return err
	}
	if err := rebuild(rdfterm.RDFPredicate, q.pred); err != nil {
		return err
	}
	if err := rebuild(rdfterm.RDFObject, q.obj); err != nil {
		return err
	}
	for _, t := range q.extras {
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// quadMember reports whether t is one of the four reification-vocabulary
// statements, returning the reification resource.
func quadMember(t ntriples.Triple) (bool, rdfterm.Term) {
	switch t.Predicate.Value {
	case rdfterm.RDFSubject, rdfterm.RDFPredicate, rdfterm.RDFObject:
		return true, t.Subject
	case rdfterm.RDFType:
		if t.Object.Kind == rdfterm.URI && t.Object.Value == rdfterm.RDFStatement {
			return true, t.Subject
		}
	}
	return false, rdfterm.Term{}
}

func tripleKey(t ntriples.Triple) string {
	return t.String()
}

// Package core implements the paper's primary contribution: RDF storage in
// the database as an object type (SDO_RDF_TRIPLE / SDO_RDF_TRIPLE_S) over a
// central schema of global tables (rdf_model$, rdf_value$, rdf_node$,
// rdf_link$, rdf_blank_node$) layered on the Network Data Model, with
// DBUri-based streamlined reification (§4, §5).
package core

import (
	"repro/internal/reldb"
)

// Table and index names of the central schema. The trailing '$' follows
// the paper's naming.
const (
	TableModel     = "rdf_model$"
	TableValue     = "rdf_value$"
	TableNode      = "rdf_node$"
	TableLink      = "rdf_link$"
	TableBlankNode = "rdf_blank_node$"

	idxModelPK   = "rdf_model_pk"
	idxModelName = "rdf_model_name"
	idxValuePK   = "rdf_value_pk"
	idxValueText = "rdf_value_text" // function index over full text + type
	idxNodePK    = "rdf_node_pk"
	idxLinkPK    = "rdf_link_pk"
	idxLinkMSPO  = "rdf_link_mspo"  // unique (MODEL_ID, START, P, END)
	idxLinkMP    = "rdf_link_mp"    // (MODEL_ID, P_VALUE_ID)
	idxLinkMO    = "rdf_link_mo"    // (MODEL_ID, CANON_END_NODE_ID)
	idxLinkStart = "rdf_link_start" // global (START_NODE_ID) — NDM view
	idxLinkEnd   = "rdf_link_end"   // global (END_NODE_ID) — NDM view
	idxBlankPK   = "rdf_blank_pk"   // unique (MODEL_ID, ORIG_NAME)
)

// Column positions in rdf_value$ (Figure 4).
const (
	vcValueID = iota
	vcValueName
	vcValueType
	vcLiteralType
	vcLanguageType
	vcLongValue
)

// Column positions in rdf_link$ (Figure 4).
const (
	lcLinkID = iota
	lcStartNodeID
	lcPValueID
	lcEndNodeID
	lcCanonEndNodeID
	lcLinkType
	lcCost
	lcContext
	lcReifLink
	lcModelID
)

// Column positions in rdf_model$.
const (
	mcModelID = iota
	mcModelName
	mcTableName
	mcColumnName
)

// CONTEXT codes (§5.1, §5.2): a Direct triple was entered as a fact; an
// Indirect triple exists only as the base of a reification.
const (
	ContextDirect   = "D"
	ContextIndirect = "I"
)

func valueSchema() *reldb.Schema {
	return reldb.NewSchema(TableValue,
		reldb.Column{Name: "VALUE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "VALUE_NAME", Kind: reldb.KindString},
		reldb.Column{Name: "VALUE_TYPE", Kind: reldb.KindString},
		reldb.Column{Name: "LITERAL_TYPE", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "LANGUAGE_TYPE", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "LONG_VALUE", Kind: reldb.KindString, Nullable: true},
	)
}

func linkSchema() *reldb.Schema {
	return reldb.NewSchema(TableLink,
		reldb.Column{Name: "LINK_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "START_NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "P_VALUE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "END_NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "CANON_END_NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "LINK_TYPE", Kind: reldb.KindString},
		reldb.Column{Name: "COST", Kind: reldb.KindInt},
		reldb.Column{Name: "CONTEXT", Kind: reldb.KindString},
		reldb.Column{Name: "REIF_LINK", Kind: reldb.KindString},
		reldb.Column{Name: "MODEL_ID", Kind: reldb.KindInt},
	)
}

func modelSchema() *reldb.Schema {
	return reldb.NewSchema(TableModel,
		reldb.Column{Name: "MODEL_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "MODEL_NAME", Kind: reldb.KindString},
		reldb.Column{Name: "TABLE_NAME", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "COLUMN_NAME", Kind: reldb.KindString, Nullable: true},
	)
}

func nodeSchema() *reldb.Schema {
	return reldb.NewSchema(TableNode,
		reldb.Column{Name: "NODE_ID", Kind: reldb.KindInt}, // = VALUE_ID
		reldb.Column{Name: "ACTIVE", Kind: reldb.KindBool},
	)
}

func blankNodeSchema() *reldb.Schema {
	return reldb.NewSchema(TableBlankNode,
		reldb.Column{Name: "MODEL_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "ORIG_NAME", Kind: reldb.KindString},
		reldb.Column{Name: "VALUE_ID", Kind: reldb.KindInt},
	)
}

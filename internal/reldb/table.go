package reldb

import (
	"fmt"
	"sync"

	"repro/internal/btree"
)

// RowID identifies a row within one table. Row IDs are stable for the life
// of the row and never reused (deleted slots are tombstoned), which lets
// other tables reference rows by ID — the way the RDF application tables
// reference rdf_link$ rows.
type RowID = int64

// Table is a heap table with optional secondary indexes and optional list
// partitioning on one integer column. All methods are safe for concurrent
// use.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []Row // index = RowID; nil = tombstone
	live    int
	indexes map[string]*Index
	ordered []*Index // maintenance order, deterministic
	partCol int      // -1 when unpartitioned
	partIdx *Index   // hidden partition index when partCol >= 0
}

// NewTable creates an unpartitioned table.
func NewTable(schema *Schema) *Table {
	return &Table{
		name:    schema.Table(),
		schema:  schema,
		indexes: make(map[string]*Index),
		partCol: -1,
	}
}

// NewPartitionedTable creates a table list-partitioned on the named integer
// column. Partition pruning is available through ScanPartition, and
// partition-local access paths are composite indexes prefixed with the
// partition column. This mirrors how the paper's rdf_link$ table is
// partitioned by MODEL_ID (§4).
func NewPartitionedTable(schema *Schema, partColumn string) *Table {
	t := NewTable(schema)
	t.partCol = schema.MustColumnIndex(partColumn)
	if schema.Column(t.partCol).Kind != KindInt {
		panic(fmt.Sprintf("reldb: partition column %s.%s must be NUMBER", schema.Table(), partColumn))
	}
	t.partIdx = t.mustCreateIndexLocked("__part$"+partColumn, false, columnKeyFunc(schema, []string{partColumn}))
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// columnKeyFunc builds a KeyFunc extracting the named columns in order.
func columnKeyFunc(s *Schema, cols []string) KeyFunc {
	pos := make([]int, len(cols))
	for i, c := range cols {
		pos[i] = s.MustColumnIndex(c)
	}
	return func(r Row) Key {
		k := make(Key, len(pos))
		for i, p := range pos {
			k[i] = r[p]
		}
		return k
	}
}

// Insert validates and appends a row, maintaining all indexes. It returns
// the new row's ID. On a unique-index conflict nothing is modified and the
// row ID of an arbitrary conflicting row is reported in the error via
// UniqueViolation.
func (t *Table) Insert(r Row) (RowID, error) {
	if err := t.schema.Validate(r); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r = r.Clone()
	for _, idx := range t.ordered {
		if !idx.unique {
			continue
		}
		k := idx.keyOf(r)
		if keyHasNull(k) {
			continue
		}
		if idx.tree.Contains(k) {
			return 0, fmt.Errorf("%w: index %s key %s", ErrUniqueViolation, idx.name, k)
		}
	}
	id := RowID(len(t.rows))
	t.rows = append(t.rows, r)
	t.live++
	for _, idx := range t.ordered {
		idx.tree.Insert(idx.keyOf(r), id)
	}
	return id, nil
}

// Get returns a copy of the row with the given ID.
func (t *Table) Get(id RowID) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, err := t.getLocked(id)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

func (t *Table) getLocked(id RowID) (Row, error) {
	if id < 0 || id >= int64(len(t.rows)) || t.rows[id] == nil {
		return nil, fmt.Errorf("%w: %s row %d", ErrNoSuchRow, t.name, id)
	}
	return t.rows[id], nil
}

// Update replaces the row with the given ID, maintaining indexes. Unique
// checks exclude the row being updated.
func (t *Table) Update(id RowID, r Row) error {
	if err := t.schema.Validate(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.getLocked(id)
	if err != nil {
		return err
	}
	r = r.Clone()
	for _, idx := range t.ordered {
		if !idx.unique {
			continue
		}
		k := idx.keyOf(r)
		if keyHasNull(k) {
			continue
		}
		conflict := false
		idx.tree.AscendRange(&k, &k, func(_ Key, other int64) bool {
			if other != id {
				conflict = true
			}
			return !conflict
		})
		if conflict {
			return fmt.Errorf("%w: index %s key %s", ErrUniqueViolation, idx.name, k)
		}
	}
	for _, idx := range t.ordered {
		idx.tree.Delete(idx.keyOf(old), id)
		idx.tree.Insert(idx.keyOf(r), id)
	}
	t.rows[id] = r
	return nil
}

// UpdateColumn replaces one column of one row.
func (t *Table) UpdateColumn(id RowID, column string, v Value) error {
	pos := t.schema.MustColumnIndex(column)
	t.mu.RLock()
	old, err := t.getLocked(id)
	if err != nil {
		t.mu.RUnlock()
		return err
	}
	r := old.Clone()
	t.mu.RUnlock()
	r[pos] = v
	return t.Update(id, r)
}

// Delete tombstones the row and removes its index entries.
func (t *Table) Delete(id RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, err := t.getLocked(id)
	if err != nil {
		return err
	}
	for _, idx := range t.ordered {
		idx.tree.Delete(idx.keyOf(r), id)
	}
	t.rows[id] = nil
	t.live--
	return nil
}

// Scan visits every live row in row-ID order until fn returns false. The
// row passed to fn must not be retained or mutated; Clone it to keep it.
func (t *Table) Scan(fn func(id RowID, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(RowID(id), r) {
			return
		}
	}
}

// ScanPartition visits live rows of one partition (partition-pruned scan).
// It requires a partitioned table.
func (t *Table) ScanPartition(part int64, fn func(id RowID, r Row) bool) error {
	if t.partCol < 0 {
		return fmt.Errorf("%w: table %s is not partitioned", ErrNoSuchPartition, t.name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	k := Key{Int(part)}
	t.partIdx.tree.AscendRange(&k, &k, func(_ Key, id int64) bool {
		return fn(id, t.rows[id])
	})
	return nil
}

// PartitionLen returns the number of live rows in one partition.
func (t *Table) PartitionLen(part int64) int {
	n := 0
	if err := t.ScanPartition(part, func(RowID, Row) bool { n++; return true }); err != nil {
		return 0
	}
	return n
}

// Partitions returns the distinct partition key values that currently hold
// rows, in ascending order.
func (t *Table) Partitions() []int64 {
	if t.partCol < 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var parts []int64
	var last *int64
	t.partIdx.tree.Ascend(func(key Key, _ int64) bool {
		v := key[0].Int64()
		if last == nil || *last != v {
			parts = append(parts, v)
			v2 := v
			last = &v2
		}
		return true
	})
	return parts
}

func keyHasNull(k Key) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// TruncatePartition deletes every row in one partition, returning the
// number of rows removed. Used when an RDF model is dropped.
func (t *Table) TruncatePartition(part int64) (int, error) {
	if t.partCol < 0 {
		return 0, fmt.Errorf("%w: table %s is not partitioned", ErrNoSuchPartition, t.name)
	}
	var ids []RowID
	if err := t.ScanPartition(part, func(id RowID, _ Row) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return 0, err
	}
	for _, id := range ids {
		if err := t.Delete(id); err != nil {
			return 0, err
		}
	}
	return len(ids), nil
}

// --- indexes ---

// KeyFunc derives an index key from a row. Function-based indexes (paper
// §7.2) pass arbitrary functions; column indexes use column extraction.
type KeyFunc func(Row) Key

// Index is a B-tree index over a table. Read methods take the owning
// table's lock, so an Index handle is safe for concurrent use.
type Index struct {
	name   string
	unique bool
	keyOf  KeyFunc
	tree   *btree.Tree[Key]
	owner  *Table
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Unique reports whether this is a unique index.
func (ix *Index) Unique() bool { return ix.unique }

func (t *Table) mustCreateIndexLocked(name string, unique bool, keyOf KeyFunc) *Index {
	if _, dup := t.indexes[name]; dup {
		panic(fmt.Sprintf("reldb: index %q already exists on %s", name, t.name))
	}
	ix := &Index{name: name, unique: unique, keyOf: keyOf, tree: btree.New[Key](KeyCompare), owner: t}
	t.indexes[name] = ix
	t.ordered = append(t.ordered, ix)
	return ix
}

// CreateIndex builds a (optionally unique) index on the named columns,
// indexing existing rows. Creating a unique index over data that violates
// uniqueness fails and leaves the table without the index.
func (t *Table) CreateIndex(name string, unique bool, columns ...string) (*Index, error) {
	return t.CreateFunctionIndex(name, unique, columnKeyFunc(t.schema, columns))
}

// CreateFunctionIndex builds an index whose keys are computed by fn — the
// engine's version of Oracle function-based indexes, used in §7.2 to index
// application tables on triple.GET_SUBJECT() etc.
func (t *Table) CreateFunctionIndex(name string, unique bool, fn KeyFunc) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("%w: index %s on %s", ErrDuplicateObject, name, t.name)
	}
	ix := &Index{name: name, unique: unique, keyOf: fn, tree: btree.New[Key](KeyCompare), owner: t}
	for id, r := range t.rows {
		if r == nil {
			continue
		}
		k := fn(r)
		if unique && !keyHasNull(k) && ix.tree.Contains(k) {
			return nil, fmt.Errorf("%w: building index %s, key %s", ErrUniqueViolation, name, k)
		}
		ix.tree.Insert(k, RowID(id))
	}
	t.indexes[name] = ix
	t.ordered = append(t.ordered, ix)
	return ix, nil
}

// DropIndex removes an index.
func (t *Table) DropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[name]; !ok {
		return fmt.Errorf("%w: %s on %s", ErrNoSuchIndex, name, t.name)
	}
	delete(t.indexes, name)
	for i, ix := range t.ordered {
		if ix.name == name {
			t.ordered = append(t.ordered[:i], t.ordered[i+1:]...)
			break
		}
	}
	return nil
}

// Index returns a previously created index by name.
func (t *Table) Index(name string) (*Index, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoSuchIndex, name, t.name)
	}
	return ix, nil
}

// MustIndex is Index but panics on unknown names (index names in this
// codebase are constants).
func (t *Table) MustIndex(name string) *Index {
	ix, err := t.Index(name)
	if err != nil {
		panic(err)
	}
	return ix
}

// Lookup returns the IDs of rows whose index key equals key.
func (ix *Index) Lookup(key Key) []RowID {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	return ix.tree.Get(key)
}

// LookupOne returns the single row ID for key in a unique index, or
// (0, false) when absent.
func (ix *Index) LookupOne(key Key) (RowID, bool) {
	ids := ix.Lookup(key)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

// Contains reports whether any row has the given key.
func (ix *Index) Contains(key Key) bool {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	return ix.tree.Contains(key)
}

// Scan visits (key, rowID) pairs with lo <= key <= hi in key order. Nil
// bounds are unbounded. fn returning false stops the scan.
func (ix *Index) Scan(lo, hi Key, fn func(key Key, id RowID) bool) {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	var lb, hb *Key
	if lo != nil {
		lb = &lo
	}
	if hi != nil {
		hb = &hi
	}
	ix.tree.AscendRange(lb, hb, func(k Key, id int64) bool {
		return fn(k, id)
	})
}

// ScanPrefix visits every entry whose key begins with prefix, in key order.
func (ix *Index) ScanPrefix(prefix Key, fn func(key Key, id RowID) bool) {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	ix.tree.AscendRange(&prefix, nil, func(key Key, id int64) bool {
		if len(key) < len(prefix) {
			return false
		}
		if key[:len(prefix)].Compare(prefix) != 0 {
			return false
		}
		return fn(key, id)
	})
}

// ScanPrefixRows is ScanPrefix, but also hands fn the live row for each
// index entry, fetched under the same single read-lock hold (avoiding the
// per-row Table.Get re-lock + Clone). The row passed to fn must not be
// retained or mutated; Clone it to keep it. Entries whose row has been
// tombstoned are skipped.
func (ix *Index) ScanPrefixRows(prefix Key, fn func(key Key, id RowID, r Row) bool) {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	ix.tree.AscendRange(&prefix, nil, func(key Key, id int64) bool {
		if len(key) < len(prefix) {
			return false
		}
		if key[:len(prefix)].Compare(prefix) != 0 {
			return false
		}
		r, err := ix.owner.getLocked(id)
		if err != nil {
			return true
		}
		return fn(key, id, r)
	})
}

// Len returns the number of entries in the index.
func (ix *Index) Len() int {
	ix.owner.mu.RLock()
	defer ix.owner.mu.RUnlock()
	return ix.tree.Len()
}

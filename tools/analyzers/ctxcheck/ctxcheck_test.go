package ctxcheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestCtxcheck(t *testing.T) {
	// The bad fixture stands in for a request-path package; the good one
	// shows the relaxed rules everywhere else.
	StrictPackages["badctx"] = true
	defer delete(StrictPackages, "badctx")
	framework.RunTest(t, "testdata", Analyzer, "badctx", "goodctx")
}

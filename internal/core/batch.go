package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/rdfterm"
	"repro/internal/trace"
)

// Bulk-insert fast path. The per-triple insert path takes the store's
// write lock, updates every index, and pays a WAL commit (an fsync, when
// durable) for every statement; at UniProt scale (§7.1.1, millions of
// triples) that is latency-bound, not bandwidth-bound. InsertBatch
// amortizes all three costs: one lock acquisition, one WAL record group,
// one commit point per batch.

// BatchTriple is one statement queued for InsertBatch.
type BatchTriple struct {
	Subject   rdfterm.Term
	Predicate rdfterm.Term
	Object    rdfterm.Term
	// Implied inserts the triple as an indirect statement (CONTEXT = "I",
	// §5.2) — the base of a reification that was never asserted directly.
	Implied bool
}

// BatchResult reports what a batch did.
type BatchResult struct {
	// Triples holds the storage object for every input statement, in
	// input order (repeated statements share a TID with bumped COST).
	Triples []TripleS
	// NewLinks is the number of new rdf_link$ rows created.
	NewLinks int
}

// InsertBatch inserts a batch of triples under a single write-lock
// acquisition and a single WAL commit point. The batch runs in two
// phases, mirroring the §4.1 pipeline at batch granularity: every
// distinct term across the batch is interned into rdf_value$ first
// (repeats hit the term-ID cache), then the rdf_link$ rows are inserted.
// The WAL sees one record group ending in one Commit, so a crash either
// keeps the whole batch or replays a consistent prefix of it.
//
// On error the store keeps the entries already applied (each is
// individually consistent) and the WAL is left uncommitted; the error
// identifies the failing entry by batch index.
func (s *Store) InsertBatch(model string, batch []BatchTriple) (BatchResult, error) {
	return s.InsertBatchCtx(context.Background(), model, batch)
}

// InsertBatchCtx is InsertBatch under a request context. The context is
// not consulted for cancellation — a batch is one commit point and runs
// to completion once the write lock is held — but a span in ctx (see
// internal/trace) records the batch's phases: intern, links, and the
// WAL commit, each with its row counts. Without a span the batch never
// reads the clock beyond its existing metrics, preserving the
// zero-overhead-when-disabled budget.
func (s *Store) InsertBatchCtx(ctx context.Context, model string, batch []BatchTriple) (BatchResult, error) {
	if len(batch) == 0 {
		return BatchResult{}, nil
	}
	t0 := s.met.startTimer()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.onWriteLockAcquired(t0)
	s.met.onBatch(len(batch))
	sp := trace.FromContext(ctx)
	var batchStart, phaseStart time.Time
	if sp != nil {
		batchStart = time.Now()
		phaseStart = batchStart
	}
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return BatchResult{}, err
	}

	// Phase 1: intern. After this loop every VALUE_ID the batch needs
	// exists, so the link phase is pure index-and-insert work.
	interned := make([]internedTriple, len(batch))
	for i, bt := range batch {
		it, err := s.internTripleLocked(mid, bt.Subject, bt.Predicate, bt.Object)
		if err != nil {
			err = fmt.Errorf("core: batch entry %d: %w", i, err)
			s.spanBatch(sp, batchStart, []batchPhase{{"core.intern", phaseStart, since(sp, phaseStart), nil, true}}, len(batch), err)
			return BatchResult{}, err
		}
		interned[i] = it
	}
	var phases []batchPhase
	if sp != nil {
		now := time.Now()
		phases = append(phases, batchPhase{"core.intern", phaseStart, now.Sub(phaseStart),
			map[string]string{"triples": strconv.Itoa(len(batch))}, false})
		phaseStart = now
	}

	// Phase 2: links.
	res := BatchResult{Triples: make([]TripleS, len(batch))}
	for i, it := range interned {
		context := ContextDirect
		if batch[i].Implied {
			context = ContextIndirect
		}
		ts, created, err := s.insertLinkLocked(mid, it, context)
		if err != nil {
			err = fmt.Errorf("core: batch entry %d: %w", i, err)
			s.spanBatch(sp, batchStart, append(phases, batchPhase{"core.links", phaseStart, since(sp, phaseStart), nil, true}), len(batch), err)
			return res, err
		}
		res.Triples[i] = ts
		if created {
			res.NewLinks++
		}
	}
	s.met.setTriples(s.links.Len())
	if sp != nil {
		now := time.Now()
		phases = append(phases, batchPhase{"core.links", phaseStart, now.Sub(phaseStart),
			map[string]string{"new_links": strconv.Itoa(res.NewLinks)}, false})
		phaseStart = now
	}
	err = s.logCommit()
	if sp != nil {
		phases = append(phases, batchPhase{"core.wal_commit", phaseStart, time.Since(phaseStart), nil, err != nil})
		s.spanBatch(sp, batchStart, phases, len(batch), err)
	}
	return res, err
}

// batchPhase is one timed InsertBatch phase awaiting span attachment.
type batchPhase struct {
	name   string
	start  time.Time
	d      time.Duration
	attrs  map[string]string
	failed bool
}

// spanBatch attaches the batch's phase spans under one
// "core.insert_batch" grouping span. No-op without a span.
func (s *Store) spanBatch(sp *trace.Span, start time.Time, phases []batchPhase, n int, err error) {
	if sp == nil {
		return
	}
	attrs := map[string]string{"triples": strconv.Itoa(n)}
	if err != nil {
		attrs["error"] = err.Error()
	}
	b := sp.AddCompleted("core.insert_batch", start, time.Since(start), attrs, err != nil)
	for _, p := range phases {
		b.AddCompleted(p.name, p.start, p.d, p.attrs, p.failed)
	}
}

// since is time.Since gated on a span being present, so untraced paths
// never read the clock.
func since(sp *trace.Span, t time.Time) time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(t)
}

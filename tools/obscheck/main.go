// Command obscheck scrapes a running admin endpoint and fails when the
// exposition is unparseable or thinner than expected — the CI gate for
// the -admin surface.
//
// Usage:
//
//	obscheck -base http://127.0.0.1:9090 [-min-series 20] [-prefixes wal_,core_] [-series wal_disk_bytes,wal_segments]
//
// It GETs /metrics, parses it with the strict Prometheus-text parser
// the admin handler's golden test uses, and checks the family count,
// per-subsystem prefixes, and any exact family names demanded with
// -series; then GETs /healthz and requires a well-formed
// JSON health payload. Exit status 0 means the endpoint serves what a
// scraper needs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	base := fs.String("base", "http://127.0.0.1:9090", "admin endpoint base URL")
	minSeries := fs.Int("min-series", 20, "minimum metric families /metrics must expose")
	prefixes := fs.String("prefixes", "", "comma-separated series prefixes that must be present (e.g. wal_,core_)")
	series := fs.String("series", "", "comma-separated exact family names that must be present (e.g. wal_disk_bytes,wal_segments)")
	wait := fs.Duration("wait", 10*time.Second, "keep retrying the first scrape this long (endpoint may still be starting)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exp, err := scrape(*base+"/metrics", *wait)
	if err != nil {
		return err
	}
	if got := exp.Families(); got < *minSeries {
		return fmt.Errorf("/metrics exposes %d families, want >= %d", got, *minSeries)
	}
	if *prefixes != "" {
		for _, p := range strings.Split(*prefixes, ",") {
			if p = strings.TrimSpace(p); p != "" && !exp.HasPrefix(p) {
				return fmt.Errorf("/metrics has no %s* series", p)
			}
		}
	}
	if *series != "" {
		for _, name := range strings.Split(*series, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			if _, ok := exp.Types[name]; !ok {
				return fmt.Errorf("/metrics has no %s family", name)
			}
		}
	}

	resp, err := http.Get(*base + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	defer resp.Body.Close()
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("/healthz is not valid JSON: %w", err)
	}
	if h.State == "" {
		return fmt.Errorf("/healthz payload has no state: %+v", h)
	}
	fmt.Printf("ok: %d families, healthz %s (%s)\n", exp.Families(), resp.Status, h.State)
	return nil
}

// scrape GETs and strictly parses the exposition, retrying until the
// endpoint answers or the wait budget runs out.
func scrape(url string, wait time.Duration) (*obs.Exposition, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err == nil {
			exp, perr := obs.ParseExposition(resp.Body)
			resp.Body.Close()
			if perr != nil {
				return nil, fmt.Errorf("%s unparseable: %w", url, perr)
			}
			return exp, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%s unreachable: %w", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

package viewcheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestViewcheck(t *testing.T) {
	framework.RunTest(t, "testdata", Analyzer, "badview", "goodview")
}

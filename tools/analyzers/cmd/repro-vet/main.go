// Command repro-vet bundles the repository's contract analyzers —
// lockcheck, walcheck, errwrapcheck — into one binary that runs two ways:
//
//	go vet -vettool=$(pwd)/bin/repro-vet ./...   # vet protocol (CI, make lint)
//	bin/repro-vet ./...                          # standalone, no go vet driver
//
// Standalone mode loads packages with the framework's own loader, so it
// works offline and without build-cache plumbing; the vet-protocol mode
// is what the Makefile and CI use because it inherits go vet's caching
// and package enumeration.
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers/errwrapcheck"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/lockcheck"
	"repro/tools/analyzers/walcheck"
)

var analyzers = []*framework.Analyzer{
	lockcheck.Analyzer,
	walcheck.Analyzer,
	errwrapcheck.Analyzer,
}

func main() {
	if framework.VetMain(os.Args[1:], analyzers) {
		return
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone analyzes the named packages ("./..." patterns or package
// directories) without the go vet driver.
func standalone(args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, modPath, err := framework.FindModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	dirs, err := framework.ExpandPatterns(root, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	loader := framework.NewLoader(root, modPath)
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			exit = 1
			continue
		}
		diags, err := framework.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Println(framework.FormatRel(pkg.Fset, root, d))
			exit = 1
		}
	}
	return exit
}


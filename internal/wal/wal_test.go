package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleRecords exercises every record type and the encoding corner
// cases (empty strings, negative-free varints, multi-byte UTF-8).
func sampleRecords() []Record {
	return []Record{
		{Type: TypeCreateModel, ModelID: 7, Name: "gov", TableName: "ciadata", ColumnName: "triple"},
		{Type: TypeCreateModel, ModelID: 8, Name: "données", TableName: "", ColumnName: ""},
		{Type: TypeInternValue, ValueID: 1068, Text: "http://www.us.gov#MI5", ValueType: "UR"},
		{Type: TypeInternValue, ValueID: 1069, Text: "chat", ValueType: "PL@", Language: "fr"},
		{Type: TypeInternValue, ValueID: 1070, Text: "42", ValueType: "TL",
			LiteralType: "http://www.w3.org/2001/XMLSchema#int"},
		{Type: TypeInsertLink, LinkID: 2051, ModelID: 7, StartID: 1068, PropID: 1069,
			EndID: 1070, CanonID: 1071, LinkType: "STANDARD", Cost: 1, Context: "D", Reif: true},
		{Type: TypeUpdateLink, LinkID: 2051, Cost: 3, Context: "D"},
		{Type: TypeBlankNode, ModelID: 7, Name: "b1", ValueID: 1072},
		{Type: TypeSeqAdvance, Seq: SeqBlank, SeqValue: 12},
		{Type: TypeDeleteLink, LinkID: 2051},
		{Type: TypeDropModel, ModelID: 8, Name: "données"},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		payload := appendPayload(nil, &want)
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	if _, err := decodePayload([]byte{0xFF}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("unknown type: got %v, want ErrBadRecord", err)
	}
	r := Record{Type: TypeDeleteLink, LinkID: 9}
	payload := appendPayload(nil, &r)
	if _, err := decodePayload(payload[:len(payload)-1]); !errors.Is(err, ErrBadRecord) {
		t.Errorf("short payload: got %v, want ErrBadRecord", err)
	}
	if _, err := decodePayload(append(payload, 0)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("trailing bytes: got %v, want ErrBadRecord", err)
	}
}

// isPrefix reports whether got is a prefix of full (nil == empty).
func isPrefix(got, full []Record) bool {
	if len(got) > len(full) {
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], full[i]) {
			return false
		}
	}
	return true
}

// writeSample appends all sample records to a fresh in-memory log and
// returns the image.
func writeSample(t *testing.T) []byte {
	t.Helper()
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	return f.Buffer.Bytes()
}

func TestScanRoundTrip(t *testing.T) {
	img := writeSample(t)
	res, err := ScanBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("unexpected truncation: %v", res.TailErr)
	}
	if res.ValidBytes != int64(len(img)) {
		t.Errorf("ValidBytes = %d, want %d", res.ValidBytes, len(img))
	}
	if !reflect.DeepEqual(res.Records, sampleRecords()) {
		t.Errorf("records mismatch:\n got %+v\nwant %+v", res.Records, sampleRecords())
	}
}

func TestScanTornTail(t *testing.T) {
	img := writeSample(t)
	full, err := ScanBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must scan without a hard error and yield a
	// prefix of the full record sequence.
	for cut := 0; cut < len(img); cut++ {
		res, err := ScanBytes(img[:cut])
		if err != nil {
			t.Fatalf("cut %d: hard error %v", cut, err)
		}
		if res.ValidBytes > int64(cut) {
			t.Fatalf("cut %d: ValidBytes %d beyond data", cut, res.ValidBytes)
		}
		if !isPrefix(res.Records, full.Records) {
			t.Fatalf("cut %d: records are not a prefix", cut)
		}
		// A cut strictly inside the stream must be flagged unless it falls
		// exactly on a frame boundary past the header (cut 0 is "no file
		// yet", which is clean, not torn).
		onBoundary := cut == 0 || (res.ValidBytes == int64(cut) && cut >= len(Magic))
		if res.Truncated == onBoundary {
			t.Fatalf("cut %d: Truncated=%v, boundary=%v (%v)", cut, res.Truncated, onBoundary, res.TailErr)
		}
	}
}

func TestScanCorruptByte(t *testing.T) {
	img := writeSample(t)
	full, _ := ScanBytes(img)
	// Flip one bit at every offset past the header: scanning must stop at
	// or before the damaged frame and never return damaged content.
	for off := len(Magic); off < len(img); off++ {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x01
		res, err := ScanBytes(bad)
		if err != nil {
			t.Fatalf("offset %d: hard error %v", off, err)
		}
		if !res.Truncated {
			t.Fatalf("offset %d: corruption not detected", off)
		}
		if !isPrefix(res.Records, full.Records) {
			t.Fatalf("offset %d: surviving records are not a prefix", off)
		}
		if res.ValidBytes > int64(off) {
			t.Fatalf("offset %d: accepted bytes past the corruption (%d)", off, res.ValidBytes)
		}
	}
}

func TestScanBadMagic(t *testing.T) {
	if _, err := ScanBytes([]byte("NOTAWAL!\x00\x00\x00\x00")); !errors.Is(err, ErrNotWAL) {
		t.Errorf("got %v, want ErrNotWAL", err)
	}
}

func TestScanEmptyAndHeaderOnly(t *testing.T) {
	res, err := ScanBytes(nil)
	if err != nil || res.Truncated || len(res.Records) != 0 {
		t.Errorf("empty: res=%+v err=%v", res, err)
	}
	res, err = ScanBytes([]byte(Magic))
	if err != nil || res.Truncated || res.ValidBytes != int64(len(Magic)) {
		t.Errorf("header only: res=%+v err=%v", res, err)
	}
}

func TestOpenFileAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, res, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("fresh file has %d records", len(res.Records))
	}
	recs := sampleRecords()
	for _, r := range recs[:5] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, verify, append the rest.
	l, res, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, recs[:5]) {
		t.Fatalf("reopen: got %d records, want 5", len(res.Records))
	}
	for _, r := range recs[5:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Records, recs) {
		t.Fatalf("after reopen+append: records mismatch")
	}
}

func TestOpenFileTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tack on half a frame.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, res, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Records) != 1 {
		t.Fatalf("res=%+v, want 1 record + truncation", res)
	}
	// The file must have been physically truncated and be appendable.
	if err := l.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	final, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Truncated || len(final.Records) != 2 {
		t.Fatalf("after repair: res=%+v, want 2 clean records", final)
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeDeleteLink, LinkID: 99}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].LinkID != 99 {
		t.Fatalf("after reset: %+v", res.Records)
	}
}

func TestFaultFileModes(t *testing.T) {
	// Golden image for reference.
	golden := writeSample(t)

	t.Run("FailStop", func(t *testing.T) {
		f := &FaultFile{FailAt: 30, Mode: FailStop}
		l, err := NewLog(f, true)
		if err != nil {
			t.Fatal(err)
		}
		var appendErr error
		for _, r := range sampleRecords() {
			if appendErr = l.Append(r); appendErr != nil {
				break
			}
		}
		if !errors.Is(appendErr, ErrInjected) {
			t.Fatalf("append error = %v, want ErrInjected", appendErr)
		}
		// Nothing of the failing write landed: image is a strict prefix of
		// the golden image ending on a frame boundary.
		if !bytes.Equal(f.Bytes(), golden[:len(f.Bytes())]) {
			t.Error("image is not a golden prefix")
		}
		res, err := ScanBytes(f.Bytes())
		if err != nil || res.Truncated {
			t.Errorf("recovery saw damage: %+v %v", res, err)
		}
	})

	t.Run("ShortWrite", func(t *testing.T) {
		f := &FaultFile{FailAt: 30, Mode: ShortWrite}
		l, _ := NewLog(f, true)
		for _, r := range sampleRecords() {
			if err := l.Append(r); err != nil {
				break
			}
		}
		if f.Written() != 30 {
			t.Fatalf("wrote %d bytes, want exactly 30", f.Written())
		}
		if !bytes.Equal(f.Bytes(), golden[:30]) {
			t.Error("torn image is not a byte prefix of golden")
		}
		res, err := ScanBytes(f.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Error("torn tail not flagged")
		}
	})

	t.Run("CorruptByte", func(t *testing.T) {
		f := &FaultFile{FailAt: 30, Mode: CorruptByte}
		l, _ := NewLog(f, true)
		for _, r := range sampleRecords() {
			if err := l.Append(r); err != nil {
				t.Fatal(err) // corruption is silent; writes keep succeeding
			}
		}
		if len(f.Bytes()) != len(golden) {
			t.Fatalf("image length %d, want %d", len(f.Bytes()), len(golden))
		}
		res, err := ScanBytes(f.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Error("checksum did not catch the flipped bit")
		}
	})
}

package rdfterm

import "testing"

// FuzzParseObject checks the convenience object parser never panics, and
// that accepted terms validate.
func FuzzParseObject(f *testing.F) {
	seeds := []string{
		"gov:files", `"lit"`, `"l"@en`, `"1"^^xsd:int`, "_:b1",
		"<http://a>", "bombing", `"unterminated`, `"x"^^`, "",
		"June-20-2000", "a:b:c:d", `"es\tc"`, "  spaced  ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	aliases := Default().With(Alias{Prefix: "gov", Namespace: "http://gov#"})
	f.Fuzz(func(t *testing.T, input string) {
		term, err := ParseObject(input, aliases)
		if err != nil {
			return
		}
		if verr := term.Validate(); verr != nil {
			t.Fatalf("ParseObject(%q) produced invalid term %#v: %v", input, term, verr)
		}
	})
}

// FuzzCanonical checks canonicalization never panics and is idempotent
// for arbitrary lexical forms and datatypes.
func FuzzCanonical(f *testing.F) {
	f.Add("25", XSDInt)
	f.Add("+025", XSDInteger)
	f.Add("2.50", XSDDecimal)
	f.Add("1e9", XSDDouble)
	f.Add("true", XSDBoolean)
	f.Add("NaN", XSDFloat)
	f.Add("not-a-number", XSDInt)
	f.Add("", XSDDecimal)
	f.Fuzz(func(t *testing.T, lex, datatype string) {
		once := Canonical(NewTypedLiteral(lex, datatype))
		twice := Canonical(once)
		if once != twice {
			t.Fatalf("Canonical not idempotent: %#v -> %#v", once, twice)
		}
	})
}

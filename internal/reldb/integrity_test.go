package reldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCheckIntegrityHealthy(t *testing.T) {
	tb := NewTable(personSchema())
	tb.CreateIndex("pk", true, "ID")
	tb.CreateIndex("byname", false, "NAME")
	tb.CreateFunctionIndex("byinitial", false, func(r Row) Key {
		return Key{String_(r[1].Str()[:1])}
	})
	for i := int64(0); i < 200; i++ {
		if _, err := tb.Insert(Row{Int(i), String_(fmt.Sprintf("p%d", i%17)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 200; i += 3 {
		ids := tb.MustIndex("pk").Lookup(Key{Int(i)})
		if err := tb.Delete(ids[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i < 200; i += 3 {
		ids := tb.MustIndex("pk").Lookup(Key{Int(i)})
		if err := tb.Update(ids[0], Row{Int(i), String_("renamed"), Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, err := range tb.CheckIntegrity() {
		t.Error(err)
	}
}

// TestQuickIntegrityUnderRandomOps is the engine-level mirror of
// core.CheckInvariants' property test.
func TestQuickIntegrityUnderRandomOps(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewPartitionedTable(NewSchema("pt",
			Column{Name: "P", Kind: KindInt},
			Column{Name: "K", Kind: KindInt},
			Column{Name: "V", Kind: KindString, Nullable: true},
		), "P")
		tb.CreateIndex("byk", false, "K")
		var ids []RowID
		for i := 0; i < int(nops)+30; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				id, err := tb.Insert(Row{
					Int(int64(rng.Intn(4))), Int(int64(rng.Intn(10))), String_("v")})
				if err != nil {
					return false
				}
				ids = append(ids, id)
			case 2:
				if len(ids) == 0 {
					continue
				}
				_ = tb.Delete(ids[rng.Intn(len(ids))]) // may be already gone
			case 3:
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				_ = tb.Update(id, Row{
					Int(int64(rng.Intn(4))), Int(int64(rng.Intn(10))), Null()})
			}
		}
		return len(tb.CheckIntegrity()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

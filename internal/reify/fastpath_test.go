package reify

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// genMixedInput builds a corpus with plain triples, repeated statements,
// complete reification quads, assertions about them, and an incomplete
// quad — everything the loader's three passes handle.
func genMixedInput(n int) string {
	var b strings.Builder
	const rdfNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://s/%d> <http://p/%d> \"v%d\" .\n", i%53, i%11, i)
		if i%10 == 3 { // repeat → cost bump
			fmt.Fprintf(&b, "<http://s/%d> <http://p/%d> \"v%d\" .\n", i%53, i%11, i)
		}
		if i%25 == 7 { // complete quad + assertion about it
			r := fmt.Sprintf("_:q%d", i)
			fmt.Fprintf(&b, "%s <%stype> <%sStatement> .\n", r, rdfNS, rdfNS)
			fmt.Fprintf(&b, "%s <%ssubject> <http://s/%d> .\n", r, rdfNS, i%53)
			fmt.Fprintf(&b, "%s <%spredicate> <http://p/%d> .\n", r, rdfNS, i%11)
			fmt.Fprintf(&b, "%s <%sobject> \"v%d\" .\n", r, rdfNS, i)
			fmt.Fprintf(&b, "<http://agent/%d> <http://said> %s .\n", i, r)
		}
	}
	// One incomplete quad (missing rdf:object).
	fmt.Fprintf(&b, "_:bad <%stype> <%sStatement> .\n", rdfNS, rdfNS)
	fmt.Fprintf(&b, "_:bad <%ssubject> <http://s/1> .\n", rdfNS)
	return b.String()
}

// TestLoadFastPathEquivalence: parallel parsing + batched inserts must
// produce the same stats and the same store state as the serial
// per-triple path.
func TestLoadFastPathEquivalence(t *testing.T) {
	input := genMixedInput(400)

	slowLoader, slow := newLoader(t, DropIncomplete)
	slowStats, err := slowLoader.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}

	fastLoader, fast := newLoader(t, DropIncomplete)
	fastLoader.Workers = 4
	fastLoader.BatchSize = 64
	fastStats, err := fastLoader.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}

	if slowStats != fastStats {
		t.Fatalf("stats diverge:\nslow %+v\nfast %+v", slowStats, fastStats)
	}
	var a, b bytes.Buffer
	if err := slow.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fast.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fast-path store state differs from serial store state")
	}
	if errs := fast.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// TestLoadFastPathAllWorkers: Workers < 0 (GOMAXPROCS) also works.
func TestLoadFastPathAllWorkers(t *testing.T) {
	l, s := newLoader(t, DropIncomplete)
	l.Workers = -1
	l.BatchSize = 32
	stats, err := l.Load(strings.NewReader(quadInput))
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 1 || stats.AssertionsRewritten != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if n, _ := s.NumTriples("m"); n != 3 {
		t.Fatalf("stored triples = %d, want 3", n)
	}
}

// TestLoadFastPathBatchContextUpgrade: a batched pass-3 insert must
// still upgrade an implied base statement inserted during folding.
func TestLoadFastPathBatchContextUpgrade(t *testing.T) {
	const rdfNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// Quad only — base triple NOT asserted → implied (CONTEXT=I).
	input := fmt.Sprintf(`
_:r <%stype> <%sStatement> .
_:r <%ssubject> <http://s> .
_:r <%spredicate> <http://p> .
_:r <%sobject> <http://o> .
`, rdfNS, rdfNS, rdfNS, rdfNS, rdfNS)
	l, s := newLoader(t, DropIncomplete)
	l.BatchSize = 16
	if _, err := l.Load(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	ts, ok, _ := s.IsTriple("m", "http://s", "http://p", "http://o", nil)
	if !ok {
		t.Fatal("base triple missing")
	}
	info, _ := s.LinkInfo(ts.TID)
	if info.Context != core.ContextIndirect {
		t.Fatalf("CONTEXT = %s, want I (implied)", info.Context)
	}
	// Load the direct assertion through the batched path: I → D.
	if _, err := l.Load(strings.NewReader("<http://s> <http://p> <http://o> .\n")); err != nil {
		t.Fatal(err)
	}
	info, _ = s.LinkInfo(ts.TID)
	if info.Context != core.ContextDirect {
		t.Fatalf("CONTEXT = %s, want D after direct assertion", info.Context)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The /debug/traces explorer. Mounted (prefix-stripped) by the server:
//
//	GET /debug/traces             — JSON list of retained-trace summaries
//	GET /debug/traces/{trace-id}  — one full span tree (JSON; ?format=text renders it)
//
// List filters, combinable:
//
//	?min_ms=250   only traces at least this slow
//	?error=true   only traces with a failed span
//	?tenant=acme  only traces whose root span has tenant=acme
//	?limit=20     at most this many traces (default 50, newest first)
//
// The list carries summaries, not span trees — an operator scans it
// for the outlier, then fetches the one trace worth reading.

// traceSummary is the list element: everything needed to pick a trace,
// nothing more.
type traceSummary struct {
	ID       string    `json:"id"`
	Root     string    `json:"root"`
	Start    time.Time `json:"start"`
	Duration int64     `json:"duration_ns"`
	Error    bool      `json:"error,omitempty"`
	Reason   string    `json:"reason"`
	Tenant   string    `json:"tenant,omitempty"`
	Spans    int       `json:"span_count"`
}

type traceList struct {
	Retained int            `json:"retained"`
	Traces   []traceSummary `json:"traces"`
}

// NewHandler serves the explorer over t's retained traces. The handler
// expects its mount prefix already stripped (the server mounts it with
// http.StripPrefix). A nil Tracer serves an empty list and 404s every
// lookup, so the route can be mounted unconditionally.
func NewHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.Trim(r.URL.Path, "/")
		if id == "" {
			serveList(t, w, r)
			return
		}
		td, ok := t.Get(id)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %s not retained (sampled out or evicted)", id), http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteTree(w, td)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(td)
	})
}

func serveList(t *Tracer, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			http.Error(w, fmt.Sprintf("bad min_ms %q", raw), http.StatusBadRequest)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	onlyErr := false
	if raw := q.Get("error"); raw != "" {
		onlyErr = raw == "1" || raw == "true"
	}
	tenant := q.Get("tenant")
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", raw), http.StatusBadRequest)
			return
		}
		limit = n
	}

	all := t.Snapshot() // newest first
	list := traceList{Retained: len(all), Traces: []traceSummary{}}
	for i := range all {
		td := &all[i]
		if td.Duration < minDur || (onlyErr && !td.Error) {
			continue
		}
		if tenant != "" && td.RootAttr("tenant") != tenant {
			continue
		}
		list.Traces = append(list.Traces, traceSummary{
			ID:       td.ID,
			Root:     td.Root,
			Start:    td.Start,
			Duration: int64(td.Duration),
			Error:    td.Error,
			Reason:   td.Reason,
			Tenant:   td.RootAttr("tenant"),
			Spans:    len(td.Spans),
		})
		if len(list.Traces) >= limit {
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(list)
}

// WriteTree renders one trace as an indented span tree:
//
//	trace 4bf92f3577b34da6a3ce929d0e0e4736  request.query  12.4ms  reason=slow
//	  request.query                      12.4ms  +0s      status=200 tenant=acme
//	    admission.wait                   1.1ms   +12µs
//	    match.query                      10.9ms  +1.3ms   rows=120 planner=cost
//	      stage 0 ?s <urn:p> ?o          9.7ms   +1.3ms   in=1 out=4000
//
// Durations are span wall time; the + column is the span's start
// offset from the trace root. Spans whose parent was not recorded
// (dropped past MaxSpans) render at the top level.
func WriteTree(w io.Writer, td TraceData) {
	errs := ""
	if td.Error {
		errs = "  ERROR"
	}
	fmt.Fprintf(w, "trace %s  %s  %s  reason=%s%s\n",
		td.ID, td.Root, td.Duration.Round(time.Microsecond), td.Reason, errs)
	if td.Truncated {
		fmt.Fprintf(w, "(truncated: span budget exhausted; later spans dropped)\n")
	}

	present := make(map[string]bool, len(td.Spans))
	for i := range td.Spans {
		present[td.Spans[i].ID] = true
	}
	children := make(map[string][]int, len(td.Spans))
	var roots []int
	for i := range td.Spans {
		p := td.Spans[i].Parent
		if p == "" || !present[p] {
			roots = append(roots, i)
			continue
		}
		children[p] = append(children[p], i)
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return td.Spans[idx[a]].Start.Before(td.Spans[idx[b]].Start) })
	}
	byStart(roots)
	var render func(idx, depth int)
	render = func(idx, depth int) {
		sp := &td.Spans[idx]
		mark := ""
		if sp.Error {
			mark = "  ERROR"
		}
		fmt.Fprintf(w, "%s%-*s  %8s  +%s%s%s\n",
			strings.Repeat("  ", depth+1), 36-2*depth, sp.Name,
			sp.Duration.Round(time.Microsecond),
			sp.Start.Sub(td.Start).Round(time.Microsecond),
			formatAttrs(sp.Attrs), mark)
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

// formatAttrs renders attributes deterministically (sorted by key).
func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString("  ")
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(attrs[k])
	}
	return b.String()
}

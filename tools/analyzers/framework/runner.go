package framework

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// RunPackage applies the analyzers to a loaded package and returns the
// surviving diagnostics, sorted by position. Suppression comments are
// honored (and audited: a vet-ignore with no justification is reported),
// and analyzers with SkipTestFiles set never report into _test.go files.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("framework: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	sups := collectSuppressions(pkg.Fset, pkg.Files)
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	hit := make([]bool, len(sups))
	for _, d := range raw {
		if analyzerByName(analyzers, d.Analyzer).SkipTestFiles &&
			strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			continue
		}
		suppressed := false
		for i, s := range sups {
			if s.matches(pkg.Fset, d) {
				hit[i] = true
				if s.reason != "" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// Audit the suppressions themselves: an unjustified one is a
	// diagnostic, one naming an unknown analyzer is a typo that would
	// silently fail to suppress anything, and one its analyzer no longer
	// fires on is stale — the contract holds there now, so the exemption
	// must go rather than linger and silence a future regression.
	for i, s := range sups {
		switch {
		case s.reason == "":
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  fmt.Sprintf("vet-ignore for %s has no justification; state why the contract does not apply", s.analyzer),
			})
		case !known[s.analyzer]:
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  fmt.Sprintf("vet-ignore names unknown analyzer %q", s.analyzer),
			})
		case !hit[i]:
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  fmt.Sprintf("stale vet-ignore: %s reports nothing here anymore; drop the suppression", s.analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

func analyzerByName(analyzers []*Analyzer, name string) *Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return &Analyzer{Name: name}
}

// Format renders a diagnostic in the conventional file:line:col form.
func Format(fset *token.FileSet, d Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
}

// FormatRel is Format with filenames rendered relative to root when
// possible, keeping tool output stable across checkouts.
func FormatRel(fset *token.FileSet, root string, d Diagnostic) string {
	p := fset.Position(d.Pos)
	name := p.Filename
	if root != "" {
		if rel, ok := strings.CutPrefix(name, strings.TrimSuffix(root, "/")+"/"); ok {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, p.Line, p.Column, d.Analyzer, d.Message)
}

package framework

import (
	"go/ast"
	"go/token"
)

// Control-flow graphs. The flow-sensitive passes (releasecheck, and any
// future must-reach analysis) need more than lockcheck's linear statement
// walk: "the release closure is called on every path" is a property of
// paths, not lines. BuildCFG lowers one function body to a graph of basic
// blocks with condition-annotated edges, precise enough for an
// intra-procedural dataflow fixpoint and nothing more — no SSA, no
// interprocedural edges, function literals left opaque (a pass analyzes
// each FuncLit body as its own function).
//
// Coverage: if/else, for (all three clauses), range, switch,
// type-switch, select, labeled statements, break/continue (with and
// without labels), goto, return, and panic(...) statements. Defer and go
// statements stay in their block as ordinary nodes — when they run is a
// property the consuming pass models (releasecheck treats a defer as
// satisfying an obligation from that point on, because the deferred call
// outlives every subsequent path).

// Block is one basic block: a maximal run of straight-line nodes.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, dense).
	Index int
	// Nodes holds the statements and conditions of the block in source
	// order. Condition expressions appear as their ast.Expr.
	Nodes []ast.Node
	// Succs are the outgoing edges. A block with no successors either
	// ends the function (the Exit block) or ends in a terminating
	// statement that the builder wired straight to Exit.
	Succs []Edge
	// Term notes how the block ends when it ends abruptly: a
	// *ast.ReturnStmt, the panic *ast.CallExpr, or nil for ordinary
	// fallthrough/branch blocks.
	Term ast.Node
}

// Edge is one control-flow edge, annotated with the branch condition
// when the transfer is conditional. For an if/for condition c, the true
// edge carries {Cond: c, Negated: false} and the false edge
// {Cond: c, Negated: true}; unconditional edges carry a nil Cond.
// Passes use the annotation to refine state along a branch (releasecheck
// waives an obligation on the edge where its paired error is non-nil).
type Edge struct {
	To      *Block
	Cond    ast.Expr
	Negated bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the virtual block every return, panic, and fall-off-the-end
	// path reaches. It holds no nodes.
	Exit *Block
}

// BuildCFG lowers body to basic blocks. body is the *ast.BlockStmt of a
// FuncDecl or FuncLit; nested function literals are NOT descended into —
// a FuncLit expression stays an opaque node of its containing block.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelFrame{}}
	b.cfg.Exit = b.newBlock() // allocated first so Index 0 is Exit
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches Exit.
	b.jump(b.cfg.Exit, nil, false)
	return b.cfg
}

// loopFrame tracks the jump targets a break/continue resolves to.
type loopFrame struct {
	breakTo    *Block
	continueTo *Block // nil inside switch/select frames
}

// labelFrame resolves labeled break/continue/goto.
type labelFrame struct {
	frame *loopFrame // loop or switch the label names, for break/continue
	start *Block     // goto target
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminator until the next block starts
	frames []*loopFrame
	labels map[string]*labelFrame
	// pendingLabel carries a label to attach to the next loop/switch.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge cur→to and leaves cur unset; no-op when control is
// already dead (cur == nil after return/break/...).
func (b *cfgBuilder) jump(to *Block, cond ast.Expr, negated bool) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Cond: cond, Negated: negated})
	b.cur = nil
}

// branch adds a conditional edge without killing the current block, for
// two-way splits out of one condition block.
func (b *cfgBuilder) branch(to *Block, cond ast.Expr, negated bool) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Cond: cond, Negated: negated})
}

// start opens blk as the current block.
func (b *cfgBuilder) start(blk *Block) { b.cur = blk }

// add appends a node to the current block, opening a fresh block when
// control was dead (unreachable code still gets blocks, just no edges in).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenBlk := b.newBlock()
		b.branch(thenBlk, s.Cond, false)
		after := b.newBlock()
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.jump(elseBlk, s.Cond, true)
			b.start(thenBlk)
			b.stmt(s.Body)
			b.jump(after, nil, false)
			b.start(elseBlk)
			b.stmt(s.Else)
			b.jump(after, nil, false)
		} else {
			b.jump(after, s.Cond, true)
			b.start(thenBlk)
			b.stmt(s.Body)
			b.jump(after, nil, false)
		}
		b.start(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head, nil, false)
		b.start(head)
		after := b.newBlock()
		var bodyBlk *Block
		if s.Cond != nil {
			b.add(s.Cond)
			bodyBlk = b.newBlock()
			b.branch(bodyBlk, s.Cond, false)
			b.jump(after, s.Cond, true)
		} else {
			bodyBlk = b.newBlock()
			b.jump(bodyBlk, nil, false)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			b.start(post)
			b.add(s.Post)
			b.jump(head, nil, false)
		}
		b.pushFrame(&loopFrame{breakTo: after, continueTo: post})
		b.start(bodyBlk)
		b.stmt(s.Body)
		b.jump(post, nil, false)
		b.popFrame()
		b.start(after)

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.jump(head, nil, false)
		b.start(head)
		// The head assigns the iteration variables each time around; the
		// body is NOT part of the head (a range over an empty operand runs
		// it zero times), so only Key/Value land here.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		after := b.newBlock()
		bodyBlk := b.newBlock()
		b.branch(bodyBlk, nil, false)
		b.jump(after, nil, false)
		b.pushFrame(&loopFrame{breakTo: after, continueTo: head})
		b.start(bodyBlk)
		b.stmt(s.Body)
		b.jump(head, nil, false)
		b.popFrame()
		b.start(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, nil)

	case *ast.SelectStmt:
		b.switchBody(s.Body, func(c *ast.CommClause) ast.Stmt { return c.Comm })

	case *ast.LabeledStmt:
		// Record the label; loops/switches consume it for break/continue,
		// a goto jumps to its start block (which a forward goto may have
		// allocated already).
		lf := b.labels[s.Label.Name]
		if lf == nil {
			lf = &labelFrame{}
			b.labels[s.Label.Name] = lf
		}
		if lf.start == nil {
			lf.start = b.newBlock()
		}
		b.jump(lf.start, nil, false)
		b.start(lf.start)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.jump(t, nil, false)
			} else {
				b.jump(b.cfg.Exit, nil, false)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.jump(t, nil, false)
			} else {
				b.jump(b.cfg.Exit, nil, false)
			}
		case token.GOTO:
			if s.Label != nil {
				lf := b.labels[s.Label.Name]
				if lf == nil {
					lf = &labelFrame{}
					b.labels[s.Label.Name] = lf
				}
				if lf.start == nil {
					lf.start = b.newBlock()
				}
				b.jump(lf.start, nil, false)
			} else {
				b.jump(b.cfg.Exit, nil, false)
			}
		case token.FALLTHROUGH:
			// switchBody wires fallthrough edges; nothing to cut here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Term = s
		}
		b.jump(b.cfg.Exit, nil, false)

	default:
		// Straight-line statement. A panic(...) call terminates the block.
		b.add(s)
		if call := panicCall(s); call != nil {
			if b.cur != nil {
				b.cur.Term = call
			}
			b.jump(b.cfg.Exit, nil, false)
		}
	}
}

// switchBody lowers the clause list shared by switch, type switch, and
// select. comm extracts a select clause's communication statement (nil
// for ordinary switches).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, comm func(*ast.CommClause) ast.Stmt) {
	after := b.newBlock()
	frame := &loopFrame{breakTo: after}
	head := b.cur
	b.pushFrame(frame)

	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	hasDefault := false
	for _, cl := range body.List {
		blk := b.newBlock()
		clauseBlocks = append(clauseBlocks, blk)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			clauseStmts = append(clauseStmts, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			clauseStmts = append(clauseStmts, cl.Body)
		}
	}
	// The head may reach any clause, and — absent a default — fall through
	// to after with no clause taken.
	if head != nil {
		for _, blk := range clauseBlocks {
			head.Succs = append(head.Succs, Edge{To: blk})
		}
		if !hasDefault {
			head.Succs = append(head.Succs, Edge{To: after})
		}
	}
	b.cur = nil

	for i, cl := range body.List {
		b.start(clauseBlocks[i])
		if comm != nil {
			if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
				b.add(c.Comm)
			}
		} else if cc, ok := cl.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				b.add(e)
			}
		}
		b.stmtList(clauseStmts[i])
		// An explicit fallthrough continues into the next clause body.
		if fallsThrough(clauseStmts[i]) && i+1 < len(clauseBlocks) {
			b.jump(clauseBlocks[i+1], nil, false)
		} else {
			b.jump(after, nil, false)
		}
	}
	b.popFrame()
	b.start(after)
}

func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushFrame(f *loopFrame) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel].frame = f
		b.pendingLabel = ""
	}
	b.frames = append(b.frames, f)
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// branchTarget resolves break/continue, labeled or not, to its block.
func (b *cfgBuilder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		lf := b.labels[label.Name]
		if lf == nil || lf.frame == nil {
			return nil
		}
		if isBreak {
			return lf.frame.breakTo
		}
		return lf.frame.continueTo
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isBreak {
			return f.breakTo
		}
		if f.continueTo != nil { // skip switch/select frames for continue
			return f.continueTo
		}
	}
	return nil
}

// Inspect walks n in source order like ast.Inspect but does not descend
// into nested *ast.FuncLit bodies: a block's nodes describe the flow of
// THIS function, and a literal's body is analyzed as its own CFG. The
// FuncLit node itself is still visited (so a pass can see the value being
// created, captured, or passed).
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !fn(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
}

// panicCall returns the panic CallExpr when s is a bare `panic(...)`
// statement, else nil.
func panicCall(s ast.Stmt) *ast.CallExpr {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil
	}
	return call
}

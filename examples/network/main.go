// Network demonstrates the paper's central architectural claim (§1, §4):
// because the RDF store is layered on the Network Data Model, "all the
// NDM functionality is exposed to RDF data" — the RDF graph can be
// analyzed as a network without any export step.
//
// A small collaboration graph is stored as RDF, then analyzed with NDM's
// shortest-path, reachability, within-cost, nearest-neighbour, connected-
// component, and spanning-tree operations, with node IDs resolved back to
// RDF terms.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ndm"
	"repro/internal/rdfterm"
)

func main() {
	store := core.New()
	if _, err := store.CreateRDFModel("social", "", ""); err != nil {
		log.Fatal(err)
	}
	ex := rdfterm.Default().With(rdfterm.Alias{Prefix: "ex", Namespace: "http://example.org/people#"})

	// A collaboration graph: alice→bob→carol→dave, alice→eve→dave, frank
	// isolated-ish.
	edges := [][3]string{
		{"ex:alice", "ex:knows", "ex:bob"},
		{"ex:bob", "ex:knows", "ex:carol"},
		{"ex:carol", "ex:knows", "ex:dave"},
		{"ex:alice", "ex:knows", "ex:eve"},
		{"ex:eve", "ex:knows", "ex:dave"},
		{"ex:frank", "ex:knows", "ex:frank"},
		{"ex:alice", "ex:worksWith", "ex:carol"},
	}
	for _, e := range edges {
		if _, err := store.NewTripleS("social", e[0], e[1], e[2], ex); err != nil {
			log.Fatal(err)
		}
	}

	net, err := store.Network("social")
	if err != nil {
		log.Fatal(err)
	}
	id := func(name string) int64 {
		nid, ok := net.NodeID(rdfterm.NewURI(ex.Expand(name)))
		if !ok {
			log.Fatalf("node %s not found", name)
		}
		return nid
	}
	name := func(nid int64) string {
		t, err := net.NodeTerm(nid)
		if err != nil {
			return fmt.Sprintf("node-%d", nid)
		}
		return ex.Compact(t.Value)
	}

	// Shortest path alice → dave (link cost = COST column = 1 per triple).
	path, err := ndm.ShortestPath(net, id("ex:alice"), id("ex:dave"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest path ex:alice → ex:dave (cost %g):\n  ", path.Cost)
	for i, n := range path.Nodes {
		if i > 0 {
			fmt.Print(" → ")
		}
		fmt.Print(name(n))
	}
	fmt.Println()

	// Reachability.
	reach, err := ndm.Reachable(net, id("ex:alice"), -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nreachable from ex:alice: ")
	for i, n := range reach {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(name(n))
	}
	fmt.Println()

	// Within cost 1 (direct acquaintances).
	within, err := ndm.WithinCost(net, id("ex:alice"), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("within cost 1 of ex:alice: ")
	for i, nc := range within {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(name(nc.Node))
	}
	fmt.Println()

	// Nearest neighbours.
	nn, err := ndm.NearestNeighbors(net, id("ex:alice"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("2 nearest neighbours of ex:alice: ")
	for i, nc := range nn {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (cost %g)", name(nc.Node), nc.Cost)
	}
	fmt.Println()

	// Weakly connected components.
	comps := ndm.ConnectedComponents(net)
	fmt.Printf("\nconnected components: %d\n", len(comps))
	for i, comp := range comps {
		fmt.Printf("  component %d:", i+1)
		for _, n := range comp {
			fmt.Printf(" %s", name(n))
		}
		fmt.Println()
	}

	// Minimum-cost spanning tree of alice's component.
	edgesMCST, total, err := ndm.MinimumCostSpanningTree(net, id("ex:alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum-cost spanning tree from ex:alice (%d edges, total cost %g):\n", len(edgesMCST), total)
	for _, e := range edgesMCST {
		fmt.Printf("  %s — %s (link %d, cost %g)\n", name(e.From), name(e.To), e.Link, e.Cost)
	}

	// Degree of a hub node.
	in, out := ndm.Degree(net, id("ex:alice"))
	fmt.Printf("\ndegree of ex:alice: in=%d out=%d\n", in, out)
}

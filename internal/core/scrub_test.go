package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/reldb"
)

// buildScrubStore seeds two models with enough links that a small slice
// size forces a multi-slice sweep, including one reified triple.
func buildScrubStore(t *testing.T) *Store {
	t.Helper()
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	base, err := s.NewTripleS("m1", "gov:s", "gov:p", "gov:o", a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reify("m1", base.TID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		m := "m1"
		if i%2 == 1 {
			m = "m2"
		}
		if _, err := s.NewTripleS(m, fmt.Sprintf("gov:s%d", i), "gov:p", fmt.Sprintf("gov:o%d", i), a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestScrubCleanStoreMatchesFullCheck(t *testing.T) {
	s := buildScrubStore(t)
	rep, err := s.ScrubPass(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean store: scrub reported %v", rep.Violations)
	}
	if rep.Interrupted {
		t.Fatal("no writers ran, yet sweep reports Interrupted")
	}
	if rep.Slices < 2 {
		t.Fatalf("slice 7 over 40+ links used %d slices; sweep not actually sliced", rep.Slices)
	}
	// Per-model stats must agree with the unsliced ModelStatistics.
	for _, m := range []string{"m1", "m2"} {
		want, err := s.ModelStatistics(m)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := rep.Stats[m]
		if !ok {
			t.Fatalf("sweep produced no stats for %s: %v", m, rep.Stats)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scrub stats for %s = %+v, ModelStatistics = %+v", m, got, want)
		}
	}
	if rep.Stats["m1"].Reified != 1 {
		t.Fatalf("reified count not accumulated: %+v", rep.Stats["m1"])
	}
	if rep.Links != rep.Stats["m1"].Triples+rep.Stats["m2"].Triples {
		t.Fatalf("audited %d links but stats cover %d", rep.Links, rep.Stats["m1"].Triples+rep.Stats["m2"].Triples)
	}
}

func TestScrubDetectsCorruption(t *testing.T) {
	s := buildScrubStore(t)
	severedValues(t, s)
	rep, err := s.ScrubPass(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Error(), "indexed in rdf_value$ but unreadable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sliced sweep missed the index/table divergence: %v", rep.Violations)
	}
}

// Mutations between slices must not manufacture false violations: the
// sweep flags itself Interrupted and quarantines cross-row findings.
func TestScrubInterruptedByWriterReportsNoFalseViolations(t *testing.T) {
	s := buildScrubStore(t)
	a := govAliases()
	sc := s.NewScrub(7)
	step := 0
	for !sc.Step() {
		// Interleave a mutation after every slice: deleting and re-adding
		// a triple the sweep already audited is exactly the shape that
		// would fake a duplicate-MSPO or orphan-node violation.
		subj := fmt.Sprintf("gov:s%d", step%5)
		obj := fmt.Sprintf("gov:o%d", step%5)
		if err := s.DeleteTriple("m1", subj, "gov:p", obj, a); err == nil {
			if _, err := s.NewTripleS("m1", subj, "gov:p", obj, a); err != nil {
				t.Fatal(err)
			}
		}
		step++
	}
	rep := sc.Report()
	if step == 0 {
		t.Fatal("sweep finished in one slice; interleaving never happened")
	}
	if !rep.Interrupted {
		t.Fatal("mutations landed between slices but sweep not marked Interrupted")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("interleaved writers produced false violations: %v", rep.Violations)
	}
	// The store really is clean; a quiesced sweep agrees.
	assertInvariants(t, s)
}

func TestScrubPassCancellation(t *testing.T) {
	s := buildScrubStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ScrubPass(ctx, 7); err == nil {
		t.Fatal("ScrubPass ignored cancelled context")
	}
}

// A sweep over a quiet store is equivalent to CheckInvariants: seed a
// genuine violation and make sure the sliced sweep reports it even when
// the store is not mutating.
func TestScrubFindsOrphanNode(t *testing.T) {
	s := buildScrubStore(t)
	// Deleting a triple normally garbage-collects orphaned nodes; fake a
	// failure of that by inserting a node row directly.
	s.mu.Lock()
	if _, err := s.nodes.Insert(reldb.Row{reldb.Int(999999), reldb.Bool(true)}); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.mu.Unlock()
	rep, err := s.ScrubPass(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Error(), "unused by any link") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sliced sweep missed the orphan node: %v", rep.Violations)
	}
}

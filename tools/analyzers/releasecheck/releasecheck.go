// Package releasecheck enforces the must-call contracts of the serving
// stack: the release closure returned by an admission Acquire/TryAcquire
// (result shape `(func(), error)`) must be called on every path, a
// context.CancelFunc must not leak its derived context, a *time.Ticker
// must be stopped, and a trace *Span born from
// Start/StartRoot/StartRemote/Child must be ended (End or Finish) — an
// unended span pins its trace buffer until the tracer is dropped, so a
// leak here grows per-request memory. All four are the same property —
// "a cleanup value born here is consumed on every path out of the
// function" — so one intra-procedural dataflow over the framework CFG
// covers them.
//
// The analysis is flow-sensitive and branch-aware:
//
//   - An obligation is born when the creating call's results are assigned
//     (`release, err := lim.Acquire(...)`). Assigning the cleanup value to
//     the blank identifier is an immediate diagnostic.
//   - A deferred call, a direct call, passing the value to another
//     function or goroutine, storing it in a struct/global, or returning
//     it all satisfy the obligation (ownership moves with the value). For
//     tickers only an explicit Stop — direct, deferred, or inside a
//     deferred/spawned closure — or an escape counts; reading t.C does
//     not. Spans mirror the ticker rules with End/Finish in place of
//     Stop: SetAttr/SetError/Child calls on the span are use of the
//     handle, not an end, and must not satisfy the obligation, while
//     passing or returning the span hands its owner the End. Spans
//     fetched with FromContext (or pre-ended handles from AddCompleted)
//     are borrowed, not born, and carry no obligation.
//   - On branches where the paired error is non-nil the obligation is
//     waived: Acquire documents that release is nil on error. The waiver
//     rides the CFG edge condition, so `if err != nil { return err }` is
//     clean while the success path still owes the call.
//   - A return reached with a live obligation is reported at the return;
//     falling off the end of the function reports at the birth site.
//     Paths that end in panic are exempt (deferred cleanup is the panic
//     story, and the process is going down anyway).
//
// The check is intra-procedural: a function that receives an already-born
// cleanup value as a parameter is the owner by convention and is not
// checked here.
package releasecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "releasecheck",
	Doc: "check that admission release closures, context cancel funcs, " +
		"ticker Stops, and trace span Ends are called on every path",
	Run: run,
	// Tests exercise leak paths deliberately (and the fixture trees are
	// full of them); the contract binds production code.
	SkipTestFiles: true,
}

type kind int

const (
	kindRelease kind = iota // func() paired with an error result
	kindCancel              // context.CancelFunc
	kindTicker              // *time.Ticker
	kindSpan                // *trace.Span born from Start/StartRoot/StartRemote/Child
)

func (k kind) label() string {
	switch k {
	case kindCancel:
		return "context cancel func"
	case kindTicker:
		return "ticker"
	case kindSpan:
		return "trace span"
	}
	return "release func"
}

func (k kind) verb() string {
	switch k {
	case kindTicker:
		return "stopped"
	case kindSpan:
		return "ended"
	}
	return "called"
}

// methodConsumed reports whether this kind is consumed only by a named
// method (Stop for tickers, End/Finish for spans) or an escape — as
// opposed to the func-valued kinds, where any reference transfers
// ownership.
func (k kind) methodConsumed() bool { return k == kindTicker || k == kindSpan }

// endsObligation reports whether calling the named method on the tracked
// value satisfies this kind's obligation.
func (k kind) endsObligation(method string) bool {
	switch k {
	case kindTicker:
		return method == "Stop"
	case kindSpan:
		return method == "End" || method == "Finish"
	}
	return false
}

// obligation is one cleanup value the function owes a call on.
type obligation struct {
	v      *types.Var // the local holding the value
	kind   kind
	errVar *types.Var // paired error result, nil for cancel/ticker
	pos    token.Pos  // birth site, for fall-off-the-end reports
}

// obState is the per-obligation dataflow lattice. Merge is max: a value
// released on one branch but live on another is still owed.
type obState int

const (
	unborn  obState = iota // not created on this path
	done                   // called, escaped, or waived
	pending                // created and not yet consumed
)

type state map[*types.Var]obState

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func merge(dst, src state) bool {
	changed := false
	for v, st := range src {
		if st > dst[v] {
			dst[v] = st
			changed = true
		}
	}
	return changed
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				analyzeFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

type funcAnalysis struct {
	pass *framework.Pass
	cfg  *framework.CFG
	obs  map[*types.Var]*obligation
	// reported dedups diagnostics by (var, position).
	reported map[[2]uint64]bool
	// report is false during the fixpoint and true in the final pass, so
	// diagnostics land exactly once with converged input states.
	report bool
}

func analyzeFunc(pass *framework.Pass, body *ast.BlockStmt) {
	fa := &funcAnalysis{
		pass:     pass,
		cfg:      framework.BuildCFG(body),
		obs:      map[*types.Var]*obligation{},
		reported: map[[2]uint64]bool{},
	}
	// Prepass: find every obligation birth so the transfer function knows
	// which locals to track (and which error results waive which value).
	for _, b := range fa.cfg.Blocks {
		for _, n := range b.Nodes {
			framework.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					fa.recordBirths(m)
				case *ast.ValueSpec:
					fa.recordBirths(specAsAssign(m))
				}
				return true
			})
		}
	}
	if len(fa.obs) == 0 {
		return
	}

	in := make([]state, len(fa.cfg.Blocks))
	for i := range in {
		in[i] = state{}
	}
	work := []*framework.Block{fa.cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := fa.transferBlock(b, in[b.Index].clone())
		for _, e := range b.Succs {
			st := out
			if e.Cond != nil {
				st = fa.applyEdge(e, out.clone())
			}
			if merge(in[e.To.Index], st) {
				work = append(work, e.To)
			}
		}
	}

	// Final pass with converged states: re-run every block's transfer so
	// in-block diagnostics (blank discards, reassignment leaks) land, and
	// report obligations still pending where a block reaches Exit.
	fa.report = true
	for _, b := range fa.cfg.Blocks {
		out := fa.transferBlock(b, in[b.Index].clone())
		exits := false
		for _, e := range b.Succs {
			if e.To == fa.cfg.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		if _, isPanic := b.Term.(*ast.CallExpr); isPanic {
			continue // panic path: deferred cleanup is the contract there
		}
		pos := token.NoPos
		if ret, ok := b.Term.(*ast.ReturnStmt); ok {
			pos = ret.Pos()
		}
		for v, st := range out {
			if st != pending {
				continue
			}
			ob := fa.obs[v]
			at := pos
			if at == token.NoPos {
				at = ob.pos
			}
			fa.reportOnce(at, v, "%s %q may never be %s on this path; call it or defer it at the acquire site",
				ob.kind.label(), v.Name(), ob.kind.verb())
		}
	}
}

func (fa *funcAnalysis) reportOnce(pos token.Pos, v *types.Var, format string, args ...any) {
	if !fa.report {
		return
	}
	key := [2]uint64{uint64(pos), uint64(v.Pos())}
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.pass.Reportf(pos, format, args...)
}

// recordBirths registers the obligations an assignment creates.
func (fa *funcAnalysis) recordBirths(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := fa.pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	results, hasErr := resultTypes(tv.Type)
	for i, rt := range results {
		k, isOb := obligationKind(rt, hasErr)
		if !isOb || i >= len(as.Lhs) {
			continue
		}
		if k == kindSpan && !spanBirthCall(call) {
			continue // borrowed (FromContext) or pre-ended (AddCompleted)
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue // assigned into a field/index: the value escapes
		}
		if id.Name == "_" {
			// Dropped on the floor: no flow analysis needed, the value
			// can never be called. Reported here in the prepass so the
			// finding stands even when it is the function's only
			// obligation.
			fa.blankDiscard(as.Pos(), k)
			continue
		}
		v := fa.lhsVar(id)
		if v == nil {
			continue
		}
		ob := &obligation{v: v, kind: k, pos: as.Pos()}
		if hasErr {
			for j, et := range results {
				if isErrorType(et) && j < len(as.Lhs) {
					if eid, ok := as.Lhs[j].(*ast.Ident); ok {
						if ev := fa.lhsVar(eid); ev != nil {
							ob.errVar = ev
						}
					}
				}
			}
		}
		fa.obs[v] = ob
	}
}

func (fa *funcAnalysis) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := fa.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fa.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// transferBlock runs the block's nodes through the transfer function.
func (fa *funcAnalysis) transferBlock(b *framework.Block, st state) state {
	for _, n := range b.Nodes {
		fa.transferNode(n, st)
	}
	return st
}

func (fa *funcAnalysis) transferNode(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		fa.consumeCallLike(n.Call, st)
	case *ast.GoStmt:
		fa.consumeCallLike(n.Call, st)
	case *ast.AssignStmt:
		fa.transferAssign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fa.transferAssign(specAsAssign(vs), st)
				}
			}
		}
	default:
		fa.scanUses(n, st)
		// Statements may nest an obligation-bearing assignment (an if
		// Init lands in the block as the IfStmt's Init only when the
		// builder hoisted it, but defer/go bodies and composite
		// statements can still carry one).
		framework.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				fa.transferAssign(m, st)
				return false
			case *ast.DeferStmt:
				fa.consumeCallLike(m.Call, st)
				return false
			case *ast.GoStmt:
				fa.consumeCallLike(m.Call, st)
				return false
			}
			return true
		})
	}
}

// transferAssign handles births, blank discards, and overwrites.
func (fa *funcAnalysis) transferAssign(as *ast.AssignStmt, st state) {
	// Uses on the RHS consume obligations first (x := release passes
	// ownership; the new alias is the caller's problem, same convention
	// as passing it to a function).
	for _, r := range as.Rhs {
		fa.scanUses(r, st)
	}

	var birth *ast.CallExpr
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			birth = call
		}
	}
	if birth != nil {
		if tv, ok := fa.pass.TypesInfo.Types[birth]; ok {
			results, hasErr := resultTypes(tv.Type)
			for i, rt := range results {
				k, isOb := obligationKind(rt, hasErr)
				if !isOb || i >= len(as.Lhs) {
					continue
				}
				if k == kindSpan && !spanBirthCall(birth) {
					continue // borrowed or pre-ended: no obligation born
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index target: escapes immediately
				}
				if id.Name == "_" {
					continue // reported once during the prepass
				}
				if v := fa.lhsVar(id); v != nil {
					if st[v] == pending {
						ob := fa.obs[v]
						fa.reportOnce(as.Pos(), v, "%s %q reassigned before being %s; the previous value leaks",
							ob.kind.label(), v.Name(), ob.kind.verb())
					}
					st[v] = pending
				}
			}
			return
		}
	}
	// A ticker or span stored into a field or slot escapes: the holder
	// owns the Stop/End from here on.
	for i, l := range as.Lhs {
		if _, isIdent := l.(*ast.Ident); isIdent || i >= len(as.Rhs) {
			continue
		}
		if id, ok := as.Rhs[i].(*ast.Ident); ok {
			if v, ok := fa.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if ob, tracked := fa.obs[v]; tracked && ob.kind.methodConsumed() {
					st[v] = done
				}
			}
		}
	}
	// Plain overwrite of a tracked local kills the obligation rather than
	// false-positive on patterns the analysis cannot follow.
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if v := fa.lhsVar(id); v != nil {
				if _, tracked := fa.obs[v]; tracked {
					if st[v] == pending {
						ob := fa.obs[v]
						fa.reportOnce(as.Pos(), v, "%s %q reassigned before being %s; the previous value leaks",
							ob.kind.label(), v.Name(), ob.kind.verb())
					}
					st[v] = done
				}
			}
		}
	}
}

// specAsAssign views `var t = time.NewTicker(d)` as the equivalent
// assignment so one code path handles both birth forms.
func specAsAssign(vs *ast.ValueSpec) *ast.AssignStmt {
	as := &ast.AssignStmt{TokPos: vs.Pos()}
	for _, n := range vs.Names {
		as.Lhs = append(as.Lhs, n)
	}
	as.Rhs = vs.Values
	return as
}

// blankDiscard reports `ctx, _ := context.WithCancel(...)`-style drops.
// Called from the prepass, which runs exactly once per function.
func (fa *funcAnalysis) blankDiscard(pos token.Pos, k kind) {
	key := [2]uint64{uint64(pos), uint64(k)}
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.pass.Reportf(pos, "%s discarded with the blank identifier; it must be %s", k.label(), k.verb())
}

// consumeCallLike satisfies obligations referenced by a deferred or
// spawned call: the call's fun/args for direct references, and for a
// closure its whole body (deferred cleanup closures are the idiom the
// serving stack uses).
func (fa *funcAnalysis) consumeCallLike(call *ast.CallExpr, st state) {
	for v, ob := range fa.obs {
		if referencesForKind(fa.pass, call, v, ob.kind, true) {
			st[v] = done
		}
	}
}

// scanUses marks obligations consumed by ordinary references in n,
// without descending into nested function literals (a closure that
// merely captures the value runs at an unknown time; only defer/go
// closures are credited, by consumeCallLike).
func (fa *funcAnalysis) scanUses(n ast.Node, st state) {
	for v, ob := range fa.obs {
		if st[v] != pending {
			continue
		}
		if referencesForKind(fa.pass, n, v, ob.kind, false) {
			st[v] = done
		}
	}
}

// referencesForKind reports whether node n consumes obligation v.
// For func-valued obligations any use of the identifier counts (a call,
// an argument, a return, a struct literal — ownership follows the
// value). For tickers and spans only the kind's ending method counts —
// Stop, or End/Finish — plus the value itself escaping as an argument,
// return value, or store; selecting anything else (t.C on a ticker,
// SetAttr/SetError/Child on a span) is use of the handle, not an end,
// and must not satisfy the obligation.
func referencesForKind(pass *framework.Pass, n ast.Node, v *types.Var, k kind, intoClosures bool) bool {
	found := false
	walk := framework.Inspect
	if intoClosures {
		walk = func(n ast.Node, fn func(ast.Node) bool) {
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil {
					return true
				}
				return fn(m)
			})
		}
	}
	walk(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.Ident:
			if !k.methodConsumed() && pass.TypesInfo.Uses[m] == v {
				found = true
			}
		case *ast.SelectorExpr:
			if !k.methodConsumed() {
				return true
			}
			base, ok := m.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[base] != v {
				return true
			}
			if k.endsObligation(m.Sel.Name) {
				found = true
			}
			// Any other selector (t.C, sp.SetAttr) is not an end; keep
			// scanning but do not treat the base ident as an escape.
			return false
		case *ast.CallExpr:
			if !k.methodConsumed() {
				return true
			}
			// The value escaping as a call argument transfers ownership.
			for _, a := range m.Args {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
		case *ast.ReturnStmt:
			if !k.methodConsumed() {
				return true
			}
			for _, r := range m.Results {
				if id, ok := r.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
		case *ast.CompositeLit:
			if !k.methodConsumed() {
				return true
			}
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if id, ok := el.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// spanBirthCall reports whether call is one of the span-creating
// entry points. FromContext hands back a span owned by the request, and
// AddCompleted returns an already-ended handle; neither births an
// obligation.
func spanBirthCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	switch name {
	case "Start", "StartRoot", "StartRemote", "Child":
		return true
	}
	return false
}

// applyEdge refines the state along a conditional edge: on a branch that
// proves an obligation's paired error non-nil, the obligation is waived
// (the creating call documents a nil cleanup value on error).
func (fa *funcAnalysis) applyEdge(e framework.Edge, st state) state {
	bin, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return st
	}
	var id *ast.Ident
	switch {
	case isNilIdent(bin.Y):
		id, _ = bin.X.(*ast.Ident)
	case isNilIdent(bin.X):
		id, _ = bin.Y.(*ast.Ident)
	}
	if id == nil {
		return st
	}
	obj, ok := fa.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return st
	}
	var nonNil bool
	switch bin.Op {
	case token.NEQ:
		nonNil = !e.Negated
	case token.EQL:
		nonNil = e.Negated
	default:
		return st
	}
	if !nonNil {
		return st
	}
	for v, ob := range fa.obs {
		if ob.errVar == obj && st[v] == pending {
			st[v] = done
		}
	}
	return st
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// resultTypes flattens a call's result type into components and reports
// whether one of them is an error.
func resultTypes(t types.Type) ([]types.Type, bool) {
	var out []types.Type
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			out = append(out, tup.At(i).Type())
		}
	} else {
		out = []types.Type{t}
	}
	hasErr := false
	for _, rt := range out {
		if isErrorType(rt) {
			hasErr = true
		}
	}
	return out, hasErr
}

// obligationKind classifies one result component.
func obligationKind(t types.Type, tupleHasErr bool) (kind, bool) {
	if tn := namedOf(t); tn != nil {
		if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "CancelFunc" {
			return kindCancel, true
		}
		if tn.Pkg() != nil && tn.Pkg().Path() == "time" && tn.Name() == "Ticker" {
			return kindTicker, true
		}
		// Matched by package *name* so the contract binds any span
		// implementation with this shape (and fixtures need not import
		// the real module). Births are further gated on the creating
		// call's name by spanBirthCall.
		if tn.Pkg() != nil && tn.Pkg().Name() == "trace" && tn.Name() == "Span" {
			return kindSpan, true
		}
		return 0, false
	}
	if sig, ok := t.(*types.Signature); ok &&
		sig.Params().Len() == 0 && sig.Results().Len() == 0 && tupleHasErr {
		return kindRelease, true
	}
	return 0, false
}

func namedOf(t types.Type) *types.TypeName {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

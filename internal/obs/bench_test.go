package obs

import (
	"testing"
	"time"
)

// The benchmarks below back the "zero overhead when disabled" budget in
// DESIGN.md §7: the Nil* variants are the disabled hot path (one nil
// check, no time.Now, no atomics) and must stay within noise of an
// empty loop; the enabled variants bound the per-operation cost when
// -admin is on.

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency_seconds", "", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserveSince(b *testing.B) {
	var h *Histogram
	var zero time.Time
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(zero)
	}
}

func BenchmarkSnapshotWriteProm(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		r.Counter(name, "bench counter").Add(123)
	}
	h := r.Histogram("bench_latency_seconds", "bench histogram", DurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.0001)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Snapshot().WriteProm(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

package core

import (
	"fmt"
	"sort"

	"repro/internal/rdfterm"
)

// RDF containers (§2): a container is a generated blank node typed
// rdf:Bag / rdf:Seq / rdf:Alt, with each member attached via the
// rdf:_n membership properties. Membership links get LINK_TYPE RDF_MEMBER
// in rdf_link$ (§4).

// ContainerKind selects the container type.
type ContainerKind string

// The three RDF container types.
const (
	BagContainer ContainerKind = rdfterm.RDFBag
	SeqContainer ContainerKind = rdfterm.RDFSeq
	AltContainer ContainerKind = rdfterm.RDFAlt
)

// CreateContainer builds a container of the given kind holding members
// (object terms), returning the container's blank node. Members are
// numbered rdf:_1, rdf:_2, … in order.
func (s *Store) CreateContainer(model string, kind ContainerKind, members ...rdfterm.Term) (rdfterm.Term, error) {
	switch kind {
	case BagContainer, SeqContainer, AltContainer:
	default:
		return rdfterm.Term{}, fmt.Errorf("core: unknown container kind %q", kind)
	}
	node, err := s.NewBlankNode(model)
	if err != nil {
		return rdfterm.Term{}, err
	}
	if _, err := s.InsertTerms(model, node, rdfterm.NewURI(rdfterm.RDFType), rdfterm.NewURI(string(kind))); err != nil {
		return rdfterm.Term{}, err
	}
	for i, m := range members {
		prop := rdfterm.NewURI(rdfterm.MembershipProperty(i + 1))
		if _, err := s.InsertTerms(model, node, prop, m); err != nil {
			return rdfterm.Term{}, err
		}
	}
	return node, nil
}

// AppendToContainer adds a member with the next free rdf:_n index.
func (s *Store) AppendToContainer(model string, container rdfterm.Term, member rdfterm.Term) (int, error) {
	existing, err := s.ContainerMembers(model, container)
	if err != nil {
		return 0, err
	}
	n := len(existing) + 1
	prop := rdfterm.NewURI(rdfterm.MembershipProperty(n))
	if _, err := s.InsertTerms(model, container, prop, member); err != nil {
		return 0, err
	}
	return n, nil
}

// ContainerMembers returns the members of a container in rdf:_n order.
func (s *Store) ContainerMembers(model string, container rdfterm.Term) ([]rdfterm.Term, error) {
	ts, err := s.Find(model, Pattern{Subject: &container})
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		term rdfterm.Term
	}
	var members []numbered
	for _, t := range ts {
		tr, err := t.GetTriple()
		if err != nil {
			return nil, err
		}
		if n, ok := rdfterm.IsMembershipProperty(tr.Property.Value); ok {
			members = append(members, numbered{n: n, term: tr.Object})
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].n < members[j].n })
	out := make([]rdfterm.Term, len(members))
	for i, m := range members {
		out[i] = m.term
	}
	return out, nil
}

// ContainerKindOf returns the container type of a node, or "" when the
// node is not typed as a container in the model.
func (s *Store) ContainerKindOf(model string, node rdfterm.Term) (ContainerKind, error) {
	typ := rdfterm.NewURI(rdfterm.RDFType)
	ts, err := s.Find(model, Pattern{Subject: &node, Predicate: &typ})
	if err != nil {
		return "", err
	}
	for _, t := range ts {
		obj, err := t.GetObject()
		if err != nil {
			return "", err
		}
		switch obj {
		case rdfterm.RDFBag, rdfterm.RDFSeq, rdfterm.RDFAlt:
			return ContainerKind(obj), nil
		}
	}
	return "", nil
}

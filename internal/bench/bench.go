// Package bench is the experiment harness behind cmd/benchrepro and the
// root bench_test.go: dataset construction for both systems under test
// (the RDF object store and the Jena2 baseline), timing with the paper's
// methodology ("the mean results of ten trials with warm caches",
// §7.1.2), and paper-style table rendering.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jena"
	"repro/internal/ntriples"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
	"repro/internal/uniprot"
)

// Trials is the number of timed trials per measurement (§7.1.2).
const Trials = 10

// Time runs f once to warm caches, then Trials times, returning the mean
// duration.
func Time(f func()) time.Duration {
	f() // warm-up
	start := time.Now()
	for i := 0; i < Trials; i++ {
		f()
	}
	return time.Since(start) / Trials
}

// Seconds formats a duration the way the paper's tables do (hundredths of
// a second; "0.00 represents query times that are less than a hundredth
// of a second").
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// Table renders paper-style result tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	dashes := make([]string, len(t.Headers))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// OracleDataset is a UniProt-like corpus loaded into the RDF object store:
// central schema + application table + §7.2 function-based subject index.
type OracleDataset struct {
	Store   *core.Store
	Model   string
	App     *core.ApplicationTable
	SubIdx  *reldb.Index
	Triples int
	Reified int
}

// LoadOracle builds the store for one dataset size. Reified statements are
// created through the reification constructor (§5.1).
func LoadOracle(triples, reified int, seed int64) (*OracleDataset, error) {
	st := core.New()
	const model = "uniprot"
	if _, err := st.CreateRDFModel(model, "uniprot_app", "triple"); err != nil {
		return nil, err
	}
	appDB := reldb.NewDatabase("APP")
	app, err := core.CreateApplicationTable(appDB, st, "uniprot_app",
		reldb.Column{Name: "ID", Kind: reldb.KindInt})
	if err != nil {
		return nil, err
	}
	row := int64(0)
	actualReified := 0
	_, err = uniprot.Stream(uniprot.Config{Triples: triples, Reified: reified, Seed: seed},
		func(t ntriples.Triple, reify bool) error {
			ts, err := st.InsertTerms(model, t.Subject, t.Predicate, t.Object)
			if err != nil {
				return err
			}
			row++
			if _, err := app.Insert([]reldb.Value{reldb.Int(row)}, ts); err != nil {
				return err
			}
			if reify {
				if _, err := st.Reify(model, ts.TID); err != nil {
					return err
				}
				actualReified++
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	// §7.2: function-based index on triple.GET_SUBJECT().
	subIdx, err := app.CreateSubjectIndex("up_sub_fbidx")
	if err != nil {
		return nil, err
	}
	return &OracleDataset{
		Store: st, Model: model, App: app, SubIdx: subIdx,
		Triples: triples, Reified: actualReified,
	}, nil
}

// Jena2Dataset is the same corpus in the Jena2 baseline.
type Jena2Dataset struct {
	Store   *jena.Jena2Store
	Model   string
	Triples int
	Reified int
}

// LoadJena2 builds the Jena2 store for one dataset size, using the same
// generator stream so both systems hold identical data.
func LoadJena2(triples, reified int, seed int64) (*Jena2Dataset, error) {
	st := jena.NewJena2Store()
	const model = "uniprot"
	if err := st.CreateModel(model); err != nil {
		return nil, err
	}
	actualReified := 0
	_, err := uniprot.Stream(uniprot.Config{Triples: triples, Reified: reified, Seed: seed},
		func(t ntriples.Triple, reify bool) error {
			stm := jena.Statement{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}
			if err := st.Add(model, stm); err != nil {
				return err
			}
			if reify {
				if _, err := st.Reify(model, stm); err != nil {
					return err
				}
				actualReified++
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &Jena2Dataset{Store: st, Model: model, Triples: triples, Reified: actualReified}, nil
}

// ProbeStatement returns the Table 2 "true" probe as a Jena statement.
func ProbeStatement() jena.Statement {
	return jena.Statement{
		Subject:   rdfterm.NewURI(uniprot.ProbeSubject),
		Predicate: rdfterm.NewURI(uniprot.SeeAlso),
		Object:    rdfterm.NewURI(uniprot.ProbeSeeAlso),
	}
}

// NonReifiedStatement returns the Table 2 "false" probe.
func NonReifiedStatement() jena.Statement {
	return jena.Statement{
		Subject:   rdfterm.NewURI(uniprot.ProbeSubject),
		Predicate: rdfterm.NewURI(uniprot.SeeAlso),
		Object:    rdfterm.NewURI(uniprot.NonReifiedProbeObject),
	}
}

package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdfterm"
	"repro/internal/trace"
)

// TestStoreMetricsSeries: one instrumented batch insert populates the
// batch, cache, lock-wait, and triple-count series.
func TestStoreMetricsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetMetrics(NewMetrics(reg))
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	batch := batchWorkload()
	if _, err := s.InsertBatch("m", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find("m", Pattern{}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if c, ok := snap.Counter("core_insert_batches_total"); !ok || c.Value != 1 {
		t.Fatalf("core_insert_batches_total = %+v", c)
	}
	if h, ok := snap.Histogram("core_insert_batch_triples"); !ok || h.Count != 1 || h.Sum != float64(len(batch)) {
		t.Fatalf("core_insert_batch_triples = %+v", h)
	}
	hits, _ := snap.Counter("core_term_cache_hits_total")
	misses, _ := snap.Counter("core_term_cache_misses_total")
	// The workload repeats terms within the batch, so both sides of the
	// intern cache must have fired.
	if hits.Value == 0 || misses.Value == 0 {
		t.Fatalf("cache hits = %d, misses = %d; want both > 0", hits.Value, misses.Value)
	}
	if h, ok := snap.Histogram("core_write_lock_wait_seconds"); !ok || h.Count == 0 {
		t.Fatalf("core_write_lock_wait_seconds = %+v", h)
	}
	if h, ok := snap.Histogram("core_read_lock_wait_seconds"); !ok || h.Count == 0 {
		t.Fatalf("core_read_lock_wait_seconds = %+v", h)
	}
	if g, ok := snap.Gauge("core_triples"); !ok || g.Value == 0 {
		t.Fatalf("core_triples = %+v", g)
	}
}

// benchBatches builds n distinct 64-triple batches so the insert path
// does real interning work on every iteration.
func benchBatches(n int) [][]BatchTriple {
	uri := rdfterm.NewURI
	out := make([][]BatchTriple, n)
	for i := range out {
		batch := make([]BatchTriple, 64)
		for j := range batch {
			batch[j] = BatchTriple{
				Subject:   uri(fmt.Sprintf("http://s/%d-%d", i, j)),
				Predicate: uri(fmt.Sprintf("http://p/%d", j%8)),
				Object:    uri(fmt.Sprintf("http://o/%d-%d", i, j)),
			}
		}
		out[i] = batch
	}
	return out
}

// BenchmarkInsertBatch is the uninstrumented baseline: the metrics
// field is nil, so every hook is a one-branch no-op. Compare with
// BenchmarkInsertBatchInstrumented to measure the disabled and enabled
// overhead of the obs layer (the ISSUE budget: disabled must be free).
func BenchmarkInsertBatch(b *testing.B) {
	benchmarkInsertBatch(b, nil)
}

// BenchmarkInsertBatchInstrumented runs the same workload with a live
// registry attached.
func BenchmarkInsertBatchInstrumented(b *testing.B) {
	benchmarkInsertBatch(b, NewMetrics(obs.NewRegistry()))
}

func benchmarkInsertBatch(b *testing.B, m *Metrics) {
	batches := benchBatches(b.N)
	s := New()
	s.SetMetrics(m)
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.InsertBatch("m", batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertBatchNilTracer is the disabled-path tracing
// counterpart of BenchmarkInsertBatch: InsertBatchCtx through a context
// carrying no span (nil Tracer → nil Span → WithSpan no-op), metrics
// nil too. The per-phase span hooks must cost one nil check each, so
// this must track the uninstrumented baseline within noise.
func BenchmarkInsertBatchNilTracer(b *testing.B) {
	var tr *trace.Tracer // nil: tracing disabled
	ctx := trace.WithSpan(context.Background(), tr.StartRoot("bench"))
	batches := benchBatches(b.N)
	s := New()
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.InsertBatchCtx(ctx, "m", batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

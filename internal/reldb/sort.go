package reldb

import "sort"

// Sorting, deduplication, and aggregation operators. These are blocking
// operators: they drain their input when first pulled.

type sortIter struct {
	rows   []Row
	i      int
	primed bool
	in     Iterator
	less   func(a, b Row) bool
}

func (s *sortIter) Next() (Row, bool) {
	if !s.primed {
		s.rows = Collect(s.in)
		sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
		s.primed = true
	}
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// NewSort orders rows by the given column positions, ascending, NULLS
// first (the engine's value order).
func NewSort(in Iterator, cols ...int) Iterator {
	return NewSortFunc(in, func(a, b Row) bool {
		for _, c := range cols {
			if cmp := a[c].Compare(b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// NewSortFunc orders rows by an arbitrary comparison.
func NewSortFunc(in Iterator, less func(a, b Row) bool) Iterator {
	return &sortIter{in: in, less: less}
}

type distinctIter struct {
	in   Iterator
	key  func(Row) Key
	seen map[string]bool
}

func (d *distinctIter) Next() (Row, bool) {
	for {
		r, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		k := encodeKey(d.key(r))
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return r, true
	}
}

// NewDistinct drops rows whose key (default: the whole row) was already
// seen. Pass column positions to deduplicate on a projection.
func NewDistinct(in Iterator, cols ...int) Iterator {
	key := func(r Row) Key { return Key(r) }
	if len(cols) > 0 {
		key = ColKey(cols...)
	}
	return &distinctIter{in: in, key: key, seen: map[string]bool{}}
}

// Aggregate computes COUNT/MIN/MAX/SUM over one column of a drained
// iterator. NULLs are ignored (SQL semantics); Count counts all rows.
type Aggregate struct {
	Count int
	Min   Value
	Max   Value
	// Sum is set for NUMBER and FLOAT columns.
	Sum float64
	// NonNull is the number of non-NULL values seen.
	NonNull int
}

// Aggregate drains in and summarizes column col.
func AggregateColumn(in Iterator, col int) Aggregate {
	var agg Aggregate
	for {
		r, ok := in.Next()
		if !ok {
			return agg
		}
		agg.Count++
		v := r[col]
		if v.IsNull() {
			continue
		}
		if agg.NonNull == 0 {
			agg.Min, agg.Max = v, v
		} else {
			if v.Compare(agg.Min) < 0 {
				agg.Min = v
			}
			if v.Compare(agg.Max) > 0 {
				agg.Max = v
			}
		}
		agg.NonNull++
		switch v.Kind() {
		case KindInt:
			agg.Sum += float64(v.Int64())
		case KindFloat:
			agg.Sum += v.Float64()
		}
	}
}

// KeyCount is one group of a GroupCount.
type KeyCount struct {
	Key   Key
	Count int
}

// GroupCount drains in and counts rows per key of the given columns,
// returning (key, count) pairs sorted by key.
func GroupCount(in Iterator, cols ...int) []KeyCount {
	keyFn := ColKey(cols...)
	counts := map[string]int{}
	keys := map[string]Key{}
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		k := keyFn(r)
		enc := encodeKey(k)
		if _, seen := counts[enc]; !seen {
			keys[enc] = append(Key{}, k...)
		}
		counts[enc]++
	}
	out := make([]KeyCount, 0, len(counts))
	var order []Key
	for enc := range counts {
		order = append(order, keys[enc])
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Compare(order[j]) < 0 })
	for _, k := range order {
		out = append(out, KeyCount{Key: k, Count: counts[encodeKey(k)]})
	}
	return out
}

package match

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

// The original materializing engine, selected with
// Options{Engine: EngineMaterialize}. It evaluates the join left-deep
// over fully materialized []map[string]rdfterm.Term binding sets, one
// store probe per (binding, model). It is kept as the differential-
// testing oracle for the streaming engine and as a fallback: simple,
// slow, and independently correct.

// runMaterialize executes the query on the materializing engine. It
// supports PlannerNaive (textual order) and otherwise uses the static
// boundness heuristic; cost-based ordering is only wired into the
// streaming engine.
func runMaterialize(ctx context.Context, store *core.Store, scope []string, pats []TriplePattern, vars []string, filter *FilterExpr, opts Options, traced bool, trace *Trace) (*ResultSet, error) {
	// Verify models exist up front for a clean error.
	for _, m := range scope {
		if _, err := store.GetModelID(m); err != nil {
			return nil, err
		}
	}
	var order []int
	plannerName := "heuristic"
	if opts.Planner == PlannerNaive {
		plannerName = "naive"
		order = make([]int, len(pats))
		for i := range order {
			order[i] = i
		}
	} else {
		order = planOrder(pats)
	}
	if traced {
		trace.Planner = plannerName
		trace.PlanOrder = append(trace.PlanOrder[:0], order...)
	}
	bindings := []map[string]rdfterm.Term{{}}
	polled := 0
	for _, pi := range order {
		pat := pats[pi]
		var stageStart time.Time
		if traced {
			stageStart = time.Now()
		}
		candidates := 0
		var next []map[string]rdfterm.Term
		for _, b := range bindings {
			polled++
			if polled%cancelEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("match: %w", err)
				}
			}
			matches, n, err := findPattern(ctx, store, scope, pat, b)
			if err != nil {
				return nil, err
			}
			candidates += n
			next = append(next, matches...)
			if opts.MaxBindings > 0 && len(next) > opts.MaxBindings {
				return nil, fmt.Errorf("%w: stage %d produced %d intermediate bindings (max %d)",
					ErrBudget, pi, len(next), opts.MaxBindings)
			}
		}
		if traced {
			trace.Stages = append(trace.Stages, StageTrace{
				Index:       pi,
				Pattern:     pat.String(),
				InBindings:  len(bindings),
				Candidates:  candidates,
				OutBindings: len(next),
				EstRows:     -1,
				Duration:    time.Since(stageStart),
			})
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}

	rs := &ResultSet{Vars: vars}
	emitted := map[string]bool{}
	for _, b := range bindings {
		if !filter.Eval(b) {
			continue
		}
		rw := make([]rdfterm.Term, len(vars))
		for i, v := range vars {
			rw[i] = b[v]
		}
		if opts.Distinct {
			key := rowKey(rw)
			if emitted[key] {
				continue
			}
			emitted[key] = true
		}
		// Without ORDER BY the cap short-circuits projection; with it the
		// full set must be collected and sorted first so the cap returns
		// the true top-N (truncation happens below, after the sort).
		if opts.Limit > 0 && len(opts.OrderBy) == 0 && len(rs.Rows) == opts.Limit {
			rs.Truncated = true
			break
		}
		rs.Rows = append(rs.Rows, rw)
	}
	if len(opts.OrderBy) > 0 {
		if err := rs.sortBy(opts.OrderBy); err != nil {
			return nil, err
		}
		if opts.Limit > 0 && len(rs.Rows) > opts.Limit {
			rs.Rows = rs.Rows[:opts.Limit]
			rs.Truncated = true
		}
	}
	return rs, nil
}

// rowKey encodes a result row collision-free for DISTINCT (the
// materializing engine's string build; the streaming engine keys on
// display IDs instead).
func rowKey(row []rdfterm.Term) string {
	var b strings.Builder
	for _, t := range row {
		b.WriteString(t.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// findPattern evaluates one pattern under a partial binding, returning
// the extended bindings plus the number of candidate triples the store
// produced before unification (the stage's scan volume, for tracing).
func findPattern(ctx context.Context, store *core.Store, models []string, pat TriplePattern, b map[string]rdfterm.Term) ([]map[string]rdfterm.Term, int, error) {
	resolve := func(pt PatternTerm) *rdfterm.Term {
		if !pt.IsVar() {
			t := pt.Term
			return &t
		}
		if t, ok := b[pt.Var]; ok {
			t := t
			return &t
		}
		return nil
	}
	cp := core.Pattern{
		Subject:   resolve(pat.S),
		Predicate: resolve(pat.P),
		Object:    resolve(pat.O),
	}
	// Literal subjects can never match (RDF subjects are URIs/blanks).
	if cp.Subject != nil && cp.Subject.Kind == rdfterm.Literal {
		return nil, 0, nil
	}
	if cp.Predicate != nil && cp.Predicate.Kind != rdfterm.URI {
		return nil, 0, nil
	}
	candidates := 0
	var out []map[string]rdfterm.Term
	for _, model := range models {
		found, err := store.FindCtx(ctx, model, cp)
		if err != nil {
			return nil, candidates, err
		}
		candidates += len(found)
		for _, ts := range found {
			tr, err := ts.GetTriple()
			if err != nil {
				return nil, candidates, err
			}
			nb := unify(pat, tr, b)
			if nb != nil {
				out = append(out, nb)
			}
		}
	}
	return out, candidates, nil
}

// unify extends binding b with the pattern's variables bound to the
// triple's terms, returning nil on conflict (same variable, different
// term — e.g. (?x p ?x) against <a p b>).
func unify(pat TriplePattern, tr core.Triple, b map[string]rdfterm.Term) map[string]rdfterm.Term {
	nb := make(map[string]rdfterm.Term, len(b)+3)
	for k, v := range b {
		nb[k] = v
	}
	bind := func(pt PatternTerm, t rdfterm.Term) bool {
		if !pt.IsVar() {
			return true // concrete terms were matched by Find
		}
		if old, ok := nb[pt.Var]; ok {
			// Compare canonically so 01^^int unifies with 1^^int.
			return rdfterm.Canonical(old).Equal(rdfterm.Canonical(t))
		}
		nb[pt.Var] = t
		return true
	}
	if !bind(pat.S, tr.Subject) || !bind(pat.P, tr.Property) || !bind(pat.O, tr.Object) {
		return nil
	}
	return nb
}

package match

import (
	"sort"

	"repro/internal/core"
)

// The cost-based planner. Pattern order dominates join cost: starting
// from the most selective pattern keeps every intermediate binding set
// small, and each later pattern should share a variable with the ones
// already run so it probes instead of re-scanning. The estimates come
// from core.PlanStats — per-predicate link counts and distinct
// subject/object cardinalities — under the usual independence
// assumptions; when a model has no statistics (empty partition) the
// planner falls back to the static boundness heuristic (planOrder).

// planOrder returns pattern indexes sorted by decreasing boundness
// (number of concrete terms), stable for equal counts. Variables bound by
// earlier patterns make later ones selective at execution time, so this
// is a reasonable static order without statistics.
func planOrder(pats []TriplePattern) []int {
	order := make([]int, len(pats))
	for i := range order {
		order[i] = i
	}
	bound := func(p TriplePattern) int {
		n := 0
		for _, pt := range []PatternTerm{p.S, p.P, p.O} {
			if !pt.IsVar() {
				n++
			}
		}
		return n
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bound(pats[order[a]]) > bound(pats[order[b]])
	})
	return order
}

// patIDs holds one pattern's concrete-term IDs resolved against one
// model: 0 where the position is a variable. ok is false when some
// concrete term cannot be resolved in the model (not interned, or a term
// kind impossible for its position) — the pattern matches nothing there.
type patIDs struct {
	ok              bool
	sid, pid, canon int64
}

// stagePlan is one pattern prepared for execution: its variable slots,
// its per-model concrete IDs, and the planner's cumulative output
// estimate (-1 when the active planner does not estimate).
type stagePlan struct {
	pi               int     // pattern index in the query text
	est              float64 // estimated OutBindings; -1 = no estimate
	sVar, pVar, oVar int     // variable slots, -1 for concrete positions
	ids              []patIDs
}

// queryPlan is the executable plan: stages in execution order.
type queryPlan struct {
	stages []stagePlan
	// empty: some pattern cannot match in any scoped model, so the whole
	// conjunction is empty — no stage needs to run.
	empty   bool
	planner string // "cost", "heuristic", or "naive"
}

// buildPlan resolves every pattern's concrete terms against every scoped
// model and orders the stages according to the requested planner. nvars
// is the size of the query's variable table; varIdx maps names to slots.
func buildPlan(tx *core.ReadTx, mids []int64, pats []TriplePattern, varIdx map[string]int, nvars int, planner Planner) queryPlan {
	stages := make([]stagePlan, len(pats))
	empty := false
	for i, pat := range pats {
		sp := stagePlan{pi: i, est: -1, sVar: -1, pVar: -1, oVar: -1, ids: make([]patIDs, len(mids))}
		if pat.S.IsVar() {
			sp.sVar = varIdx[pat.S.Var]
		}
		if pat.P.IsVar() {
			sp.pVar = varIdx[pat.P.Var]
		}
		if pat.O.IsVar() {
			sp.oVar = varIdx[pat.O.Var]
		}
		anyOK := false
		//repro:vet-ignore viewcheck bounded per-pattern/per-model ID resolution, not a row scan; buildPlan has no error path to surface a cancel and the engine polls before the first stage runs
		for m, mid := range mids {
			ids := patIDs{ok: true}
			if !pat.S.IsVar() {
				var ok bool
				if ids.sid, ok = tx.SubjectIDLocked(mid, pat.S.Term); !ok {
					ids.ok = false
				}
			}
			if ids.ok && !pat.P.IsVar() {
				var ok bool
				if ids.pid, ok = tx.PredicateIDLocked(pat.P.Term); !ok {
					ids.ok = false
				}
			}
			if ids.ok && !pat.O.IsVar() {
				var ok bool
				if ids.canon, ok = tx.ObjectCanonIDLocked(mid, pat.O.Term); !ok {
					ids.ok = false
				}
			}
			sp.ids[m] = ids
			anyOK = anyOK || ids.ok
		}
		if !anyOK {
			empty = true
		}
		stages[i] = sp
	}

	plan := queryPlan{empty: empty}
	switch planner {
	case PlannerNaive:
		plan.planner = "naive"
		plan.stages = stages
	case PlannerHeuristic:
		plan.planner = "heuristic"
		plan.stages = permuteStages(stages, planOrder(pats))
	default: // PlannerCost
		ag := gatherStats(tx, mids)
		if ag.total == 0 {
			// No statistics to estimate from (empty models): fall back.
			plan.planner = "heuristic"
			plan.stages = permuteStages(stages, planOrder(pats))
		} else {
			plan.planner = "cost"
			plan.stages = costOrder(stages, ag, nvars)
		}
	}
	return plan
}

func permuteStages(stages []stagePlan, order []int) []stagePlan {
	out := make([]stagePlan, 0, len(stages))
	for _, pi := range order {
		out = append(out, stages[pi])
	}
	return out
}

// aggStats is core.PlanStats summed across the query's scoped models, so
// estimates reflect the per-model union the engine executes.
type aggStats struct {
	total, ds, do int
	preds         map[int64]core.PredStats
}

func gatherStats(tx *core.ReadTx, mids []int64) aggStats {
	ag := aggStats{preds: map[int64]core.PredStats{}}
	//repro:vet-ignore viewcheck bounded per-model merge of cached planner statistics (PlanStatsLocked returns a prebuilt snapshot), not a row scan
	for _, mid := range mids {
		ps := tx.PlanStatsLocked(mid)
		ag.total += ps.Triples
		ag.ds += ps.DistinctSubjects
		ag.do += ps.DistinctObjects
		for pid, st := range ps.Preds {
			cur := ag.preds[pid]
			cur.Count += st.Count
			cur.DistinctSubjects += st.DistinctSubjects
			cur.DistinctObjects += st.DistinctObjects
			ag.preds[pid] = cur
		}
	}
	return ag
}

func fmax1(n int) float64 {
	if n < 1 {
		return 1
	}
	return float64(n)
}

// estimateStage returns the expected number of matches ONE input row
// produces for the pattern, given which variable slots are already bound.
// With a concrete predicate the per-predicate histogram applies:
// count/distinct-subjects per bound subject, count/distinct-objects per
// bound object. Otherwise the model-wide cardinalities stand in, with a
// 1/distinct-predicates factor for a predicate bound by an earlier
// stage. A pattern with every position resolved is a single existence
// probe: at most one match.
func estimateStage(sp *stagePlan, bound []bool, ag aggStats) float64 {
	sBound := sp.sVar < 0 || bound[sp.sVar]
	pBound := sp.pVar < 0 || bound[sp.pVar]
	oBound := sp.oVar < 0 || bound[sp.oVar]
	var est float64
	if sp.pVar < 0 {
		// Concrete predicate: predicate VALUE_IDs are global, so any
		// resolved model carries the pid; an unresolvable-everywhere
		// pattern estimates to zero.
		var pst core.PredStats
		for _, ids := range sp.ids {
			if ids.ok {
				pst = ag.preds[ids.pid]
				break
			}
		}
		est = float64(pst.Count)
		if sBound {
			est /= fmax1(pst.DistinctSubjects)
		}
		if oBound {
			est /= fmax1(pst.DistinctObjects)
		}
	} else {
		est = float64(ag.total)
		if pBound {
			est /= fmax1(len(ag.preds))
		}
		if sBound {
			est /= fmax1(ag.ds)
		}
		if oBound {
			est /= fmax1(ag.do)
		}
	}
	if sBound && pBound && oBound && est > 1 {
		est = 1
	}
	return est
}

// connectedTo reports whether the pattern shares a variable with the
// already-bound set.
func connectedTo(sp *stagePlan, bound []bool) bool {
	for _, v := range []int{sp.sVar, sp.pVar, sp.oVar} {
		if v >= 0 && bound[v] {
			return true
		}
	}
	return false
}

// costOrder greedily picks the cheapest next stage: the minimum-estimate
// pattern overall for the first stage, then the minimum-estimate pattern
// among those connected to the bound variables (avoiding cross products;
// only when nothing is connected does it fall back to the global
// minimum). Ties keep query-text order. est accumulates down the
// pipeline, so each stage records its estimated output cardinality.
func costOrder(stages []stagePlan, ag aggStats, nvars int) []stagePlan {
	n := len(stages)
	bound := make([]bool, nvars)
	used := make([]bool, n)
	out := make([]stagePlan, 0, n)
	run := 1.0
	for len(out) < n {
		best := -1
		bestConn := false
		bestEst := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			conn := connectedTo(&stages[i], bound)
			est := estimateStage(&stages[i], bound, ag)
			better := best < 0 ||
				(conn && !bestConn) ||
				(conn == bestConn && est < bestEst)
			if better {
				best, bestConn, bestEst = i, conn, est
			}
		}
		sp := stages[best]
		used[best] = true
		run *= bestEst
		sp.est = run
		for _, v := range []int{sp.sVar, sp.pVar, sp.oVar} {
			if v >= 0 {
				bound[v] = true
			}
		}
		out = append(out, sp)
	}
	return out
}

// Package guard collects the store's concurrency-contract annotations:
// struct fields marked
//
//	//repro:guarded-by <mutexField>
//
// (in the field's doc comment or trailing line comment) may only be
// touched while the named sibling sync.Mutex/sync.RWMutex is held. The
// lockcheck and walcheck analyzers consume these facts; keeping the
// collection here gives both passes one definition of "guarded".
package guard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
)

// Directive is the marker prefix (after the // of the comment).
const Directive = "repro:guarded-by"

// Info is the guard relation of one package.
type Info struct {
	// Guarded maps each marked field to its protecting mutex field.
	Guarded map[*types.Var]*types.Var
	// Mutexes is the set of fields named as protectors.
	Mutexes map[*types.Var]bool
	// ByType maps a named struct type to its guard mutex, for resolving
	// "which lock does a method on this type answer to". A struct with
	// marked fields has exactly one guard mutex.
	ByType map[*types.TypeName]*types.Var
	// MutexName maps the named struct type to the mutex field's name.
	MutexName map[*types.TypeName]string
}

// Collect parses the guard annotations of the package. Malformed
// directives are reported through the pass.
func Collect(pass *framework.Pass) *Info {
	info := &Info{
		Guarded:   map[*types.Var]*types.Var{},
		Mutexes:   map[*types.Var]bool{},
		ByType:    map[*types.TypeName]*types.Var{},
		MutexName: map[*types.TypeName]string{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			collectStruct(pass, info, ts, st)
			return true
		})
	}
	return info
}

func collectStruct(pass *framework.Pass, info *Info, ts *ast.TypeSpec, st *ast.StructType) {
	// First resolve field name → object for mutex lookup.
	fieldObj := map[string]*types.Var{}
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				fieldObj[name.Name] = v
			}
		}
	}
	typeName, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)

	for _, fld := range st.Fields.List {
		mutexName, pos := directiveOf(fld)
		if mutexName == "" {
			continue
		}
		mu, ok := fieldObj[mutexName]
		if !ok {
			pass.Reportf(pos, "guarded-by names %q, but struct %s has no such field", mutexName, ts.Name.Name)
			continue
		}
		if !IsMutexType(mu.Type()) {
			pass.Reportf(pos, "guarded-by names %q, which is not a sync.Mutex or sync.RWMutex", mutexName)
			continue
		}
		for _, name := range fld.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				info.Guarded[v] = mu
			}
		}
		info.Mutexes[mu] = true
		if typeName != nil {
			if prev, ok := info.ByType[typeName]; ok && prev != mu {
				pass.Reportf(pos, "struct %s has guarded fields under two mutexes (%s and %s); the analyzers support one guard mutex per struct",
					ts.Name.Name, prev.Name(), mu.Name())
				continue
			}
			info.ByType[typeName] = mu
			info.MutexName[typeName] = mutexName
		}
	}
}

// directiveOf extracts the guarded-by mutex name from a field's doc or
// trailing comment, returning the directive position.
func directiveOf(fld *ast.Field) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, Directive)
			if !ok {
				continue
			}
			return strings.TrimSpace(rest), c.Pos()
		}
	}
	return "", fld.Pos()
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// FieldSel resolves a selector expression to the struct field it reads,
// or nil when it is not a field selection.
func FieldSel(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// RootIdent walks a selector/paren/star chain to its base identifier;
// nil when the base is not a plain identifier (a call result, an index
// expression, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Render prints an expression compactly (types.ExprString), for building
// lock-state keys like "s.mu" or "n.store.mu".
func Render(e ast.Expr) string { return types.ExprString(e) }

// NamedOf unwraps pointers and returns the *types.TypeName of a (possibly
// pointer-to) named type, or nil.
func NamedOf(t types.Type) *types.TypeName {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// CheckInvariants validates the cross-table invariants of the central
// schema and returns every violation found. It exists for tests (notably
// the property tests that hammer the store with random operation
// sequences) and for diagnostics; a healthy store returns an empty slice.
// The background scrubber (see scrub.go) runs the same checks in bounded
// slices so the read lock is yielded between batches.
//
// Invariants checked:
//
//  1. every link's START/P/END/CANON value IDs resolve in rdf_value$;
//  2. rdf_node$ holds exactly the set of VALUE_IDs used as a subject or
//     object by at least one live link ("nodes are stored only once" and
//     removed when orphaned, §4);
//  3. every link's COST >= 1;
//  4. (MODEL_ID, START, P, CANON) is unique across live links;
//  5. every link's MODEL_ID exists in rdf_model$;
//  6. CONTEXT is D or I; REIF_LINK is Y or N; LINK_TYPE matches the
//     predicate's vocabulary classification;
//  7. every rdf_blank_node$ mapping points at a BN-typed value.
func (s *Store) CheckInvariants() []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var errs []error
	addf := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	audit := newLinkAudit()
	s.links.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		s.checkLinkLocked(r, audit, addf, addf)
		return true
	})
	s.checkNodeSetLocked(audit, addf)
	s.checkBlanksLocked(addf)
	return errs
}

// linkAudit accumulates the cross-link facts the per-link checks feed:
// which nodes are referenced by live links (invariant 2) and which
// (MODEL,S,P,CANON) keys have been seen (invariant 4).
type linkAudit struct {
	usedNodes map[int64]bool
	seenMSPO  map[string]int64
}

func newLinkAudit() *linkAudit {
	return &linkAudit{usedNodes: map[int64]bool{}, seenMSPO: map[string]int64{}}
}

// checkLinkLocked runs the per-link invariants (1, 3, 4, 5, 6) on one
// rdf_link$ row, folding the row's facts into the audit. Violations go
// through addf, except duplicate-(MODEL,S,P,CANON) findings, which go
// through dupf: those compare against rows audited earlier, so a sliced
// sweep that observed earlier rows under a different lock acquisition
// must be able to quarantine them (a row deleted and re-added between
// slices would otherwise report a false duplicate). CheckInvariants,
// which audits everything under one lock hold, passes addf for both.
// Caller holds s.mu (either mode).
func (s *Store) checkLinkLocked(r reldb.Row, audit *linkAudit, addf, dupf func(format string, args ...interface{})) {
	linkID := r[lcLinkID].Int64()
	modelID := r[lcModelID].Int64()
	sid, pid, oid, cid := r[lcStartNodeID].Int64(), r[lcPValueID].Int64(), r[lcEndNodeID].Int64(), r[lcCanonEndNodeID].Int64()

	for _, pair := range [][2]int64{{sid, 1}, {pid, 2}, {oid, 3}, {cid, 4}} {
		if !s.valuePK.Contains(reldb.Key{reldb.Int(pair[0])}) {
			addf("link %d: dangling VALUE_ID %d (pos %d)", linkID, pair[0], pair[1])
		}
	}
	audit.usedNodes[sid] = true
	audit.usedNodes[oid] = true

	if cost := r[lcCost].Int64(); cost < 1 {
		addf("link %d: COST = %d < 1", linkID, cost)
	}
	key := fmt.Sprintf("%d|%d|%d|%d", modelID, sid, pid, cid)
	if other, dup := audit.seenMSPO[key]; dup {
		dupf("links %d and %d: duplicate (MODEL,S,P,CANON)", other, linkID)
	}
	audit.seenMSPO[key] = linkID

	if !s.modelPK.Contains(reldb.Key{reldb.Int(modelID)}) {
		addf("link %d: MODEL_ID %d not in rdf_model$", linkID, modelID)
	}
	if ctx := r[lcContext].Str(); ctx != ContextDirect && ctx != ContextIndirect {
		addf("link %d: CONTEXT %q", linkID, ctx)
	}
	if rf := r[lcReifLink].Str(); rf != "Y" && rf != "N" {
		addf("link %d: REIF_LINK %q", linkID, rf)
	}
	if prop, err := s.getValueLocked(pid); err == nil {
		if want := rdfterm.LinkType(prop.Value); r[lcLinkType].Str() != want {
			addf("link %d: LINK_TYPE %q, predicate implies %q", linkID, r[lcLinkType].Str(), want)
		}
	} else if s.valuePK.Contains(reldb.Key{reldb.Int(pid)}) {
		// The wholly-missing case is already reported as a dangling
		// VALUE_ID above; an indexed-but-unreadable row is a distinct
		// index/table divergence and must not be swallowed.
		addf("link %d: predicate VALUE_ID %d indexed in rdf_value$ but unreadable: %v", linkID, pid, err)
	}
}

// checkNodeSetLocked verifies invariant 2: rdf_node$ equals the set of
// nodes used by the audited links. Only meaningful after every live link
// has been folded into the audit. Caller holds s.mu.
func (s *Store) checkNodeSetLocked(audit *linkAudit, addf func(format string, args ...interface{})) {
	nodeSet := map[int64]bool{}
	s.nodes.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		nodeSet[r[0].Int64()] = true
		return true
	})
	for n := range audit.usedNodes {
		if !nodeSet[n] {
			addf("node %d used by links but missing from rdf_node$", n)
		}
	}
	for n := range nodeSet {
		if !audit.usedNodes[n] {
			addf("node %d in rdf_node$ but unused by any link", n)
		}
	}
}

// checkBlanksLocked verifies invariant 7: blank mappings point at
// BN-typed values. Caller holds s.mu.
func (s *Store) checkBlanksLocked(addf func(format string, args ...interface{})) {
	s.blanks.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		vid := r[2].Int64()
		term, err := s.getValueLocked(vid)
		if err != nil {
			addf("blank mapping (%d,%q): dangling VALUE_ID %d", r[0].Int64(), r[1].Str(), vid)
			return true
		}
		if term.Kind != rdfterm.Blank {
			addf("blank mapping (%d,%q): VALUE_ID %d is %s, not BN", r[0].Int64(), r[1].Str(), vid, term.Kind)
		}
		return true
	})
}

// Package badwrap flattens its sentinels in every way errwrapcheck
// must catch.
package badwrap

import (
	"errors"
	"fmt"
)

var ErrNotFound = errors.New("not found")
var ErrBusy = errors.New("busy")

// The classic: sentinel under %v.
func Lookup(k string) error {
	return fmt.Errorf("lookup %q: %v", k, ErrNotFound) // want `fmt\.Errorf formats sentinel ErrNotFound with %v; use %w`
}

// %s flattens just the same.
func Acquire() error {
	return fmt.Errorf("acquire: %s", ErrBusy) // want `fmt\.Errorf formats sentinel ErrBusy with %s; use %w`
}

// Only the operand that is the sentinel is flagged; the earlier %s and
// %v consume ordinary values.
func Both(op, k string) error {
	return fmt.Errorf("%s at %v: %v", op, k, ErrNotFound) // want `formats sentinel ErrNotFound with %v`
}

// Explicit argument indexes are followed.
func Indexed(k string) error {
	return fmt.Errorf("%[2]v: %[1]s", k, ErrBusy) // want `formats sentinel ErrBusy with %v`
}

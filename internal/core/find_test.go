package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdfterm"
)

// TestFindSubjectObjectResidual pins the one access path that still
// needs a per-row filter after the index scan: subject and object bound
// with the predicate unbound. The MSPO prefix stops at (M,S) — it cannot
// skip the P column — so the object must be checked on each row.
func TestFindSubjectObjectResidual(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:s1", "gov:p1", "gov:o1", a)
	s.NewTripleS("m", "gov:s1", "gov:p2", "gov:o2", a)
	s.NewTripleS("m", "gov:s1", "gov:p3", "gov:o2", a)
	s.NewTripleS("m", "gov:s2", "gov:p1", "gov:o2", a)

	sub := rdfterm.NewURI("http://www.us.gov#s1")
	o1 := rdfterm.NewURI("http://www.us.gov#o1")
	o2 := rdfterm.NewURI("http://www.us.gov#o2")

	got, err := s.Find("m", Pattern{Subject: &sub, Object: &o2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("s1/?p/o2 matched %d rows, want 2", len(got))
	}
	got, err = s.Find("m", Pattern{Subject: &sub, Object: &o1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("s1/?p/o1 matched %d rows, want 1", len(got))
	}

	// Canonical matching must survive the residual path too: a literal
	// constraint written "01"^^xsd:int finds the row stored as 1.
	intT := rdfterm.NewTypedLiteral("1", rdfterm.XSDInt)
	if _, err := s.InsertTerms("m", sub, rdfterm.NewURI("http://www.us.gov#age"), intT); err != nil {
		t.Fatal(err)
	}
	alias := rdfterm.NewTypedLiteral("01", rdfterm.XSDInt)
	got, err = s.Find("m", Pattern{Subject: &sub, Object: &alias})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("s1/?p/\"01\"^^xsd:int matched %d rows, want 1 (canonical)", len(got))
	}
}

// TestFindModelsUnknownModel: resolution happens up front — an unknown
// model anywhere in the list fails the whole call with no partial result.
func TestFindModelsUnknownModel(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	out, err := s.FindModels([]string{"cia", "nope"}, Pattern{})
	if !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("err = %v, want ErrNoSuchModel", err)
	}
	if out != nil {
		t.Fatalf("partial results returned alongside error: %v", out)
	}
}

// TestFindModelsSnapshot: FindModels holds one read lock for the whole
// multi-model scan. The writer inserts each triple into model a and
// then model b, so in any consistent snapshot count(a) is count(b) or
// count(b)+1. With per-model locking, a writer slipping between the a
// scan and the b scan could make b run ahead. Run with -race.
func TestFindModelsSnapshot(t *testing.T) {
	s := newStoreWithModel(t, "a", "b")
	midA, err := s.GetModelID("a")
	if err != nil {
		t.Fatal(err)
	}
	sub := rdfterm.NewURI("http://s")
	obj := rdfterm.NewURI("http://o")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 300; i++ {
			p := rdfterm.NewURI(fmt.Sprintf("http://p/%d", i))
			if _, err := s.InsertTerms("a", sub, p, obj); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.InsertTerms("b", sub, p, obj); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		out, err := s.FindModels([]string{"a", "b"}, Pattern{Subject: &sub})
		if err != nil {
			t.Fatal(err)
		}
		na, nb := 0, 0
		for _, ts := range out {
			if ts.MID == midA {
				na++
			} else {
				nb++
			}
		}
		if na != nb && na != nb+1 {
			t.Fatalf("inconsistent snapshot: model a has %d rows, model b has %d", na, nb)
		}
	}
	wg.Wait()
}

package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
	"repro/internal/wal"
)

// NewTripleS is the paper's base constructor SDO_RDF_TRIPLE_S(model_name,
// subject, property, object) (Figure 5, §4.3): it parses the triple into
// the central schema (§4.1) and returns the ID object for storage in an
// application table. Inserting an existing triple returns the previously
// assigned IDs and increments the link's COST.
//
// The triple is inserted as a fact (CONTEXT = "D"); if it previously
// existed only as the base of a reification (CONTEXT = "I"), the context
// is upgraded to "D" (§5.2).
func (s *Store) NewTripleS(model, subject, property, object string, aliases *rdfterm.AliasSet) (TripleS, error) {
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return TripleS{}, err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return TripleS{}, err
	}
	obj, err := parseObjectDB(object, aliases)
	if err != nil {
		return TripleS{}, err
	}
	return s.InsertTerms(model, sub, prop, obj)
}

// parseSubjectDB parses a subject string, recognizing DBUri resources
// (which have no URI scheme and would otherwise be rejected) as URIs.
func parseSubjectDB(subject string, aliases *rdfterm.AliasSet) (rdfterm.Term, error) {
	if trimmed := strings.TrimSpace(subject); isDBUri(trimmed) {
		return rdfterm.NewURI(trimmed), nil
	}
	return rdfterm.ParseSubject(subject, aliases)
}

// parseObjectDB parses an object string, recognizing DBUri resources as
// URIs rather than plain literals.
func parseObjectDB(object string, aliases *rdfterm.AliasSet) (rdfterm.Term, error) {
	if trimmed := strings.TrimSpace(object); isDBUri(trimmed) {
		return rdfterm.NewURI(trimmed), nil
	}
	return rdfterm.ParseObject(object, aliases)
}

func isDBUri(s string) bool {
	_, ok := ParseDBUri(s)
	return ok
}

// InsertTerms inserts a triple given already-parsed terms, as a fact.
func (s *Store) InsertTerms(model string, sub, prop, obj rdfterm.Term) (TripleS, error) {
	return s.insertTermsCtx(model, sub, prop, obj, ContextDirect)
}

// InsertImplied inserts a triple as an indirect statement (CONTEXT = "I",
// §5.2) — a statement that exists only as the base of a reification. If
// the triple already exists its context is untouched.
func (s *Store) InsertImplied(model string, sub, prop, obj rdfterm.Term) (TripleS, error) {
	return s.insertTermsCtx(model, sub, prop, obj, ContextIndirect)
}

func (s *Store) insertTermsCtx(model string, sub, prop, obj rdfterm.Term, context string) (TripleS, error) {
	t0 := s.met.startTimer()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.onWriteLockAcquired(t0)
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return TripleS{}, err
	}
	ts, _, err := s.insertLocked(mid, sub, prop, obj, context)
	if err != nil {
		return TripleS{}, err
	}
	s.met.setTriples(s.links.Len())
	return ts, s.logCommit()
}

// internedTriple carries one triple between the two phases of an insert:
// the blank-resolved terms and their interned VALUE_IDs. Batch inserts
// run the intern phase over the whole batch before touching rdf_link$.
type internedTriple struct {
	sub, prop, obj rdfterm.Term
	sid, pid, oid  int64
	canonID        int64
}

// insertLocked implements the §4.1 parsing pipeline. Caller holds s.mu.
// It returns the storage object and whether a new link row was created.
func (s *Store) insertLocked(modelID int64, sub, prop, obj rdfterm.Term, context string) (TripleS, bool, error) {
	it, err := s.internTripleLocked(modelID, sub, prop, obj)
	if err != nil {
		return TripleS{}, false, err
	}
	return s.insertLinkLocked(modelID, it, context)
}

// internTripleLocked is the intern phase: blank resolution plus value
// interning for subject, predicate, object, and the object's canonical
// form (reusing existing VALUE_IDs, §4.1). Caller holds s.mu for writing.
func (s *Store) internTripleLocked(modelID int64, sub, prop, obj rdfterm.Term) (internedTriple, error) {
	if prop.Kind != rdfterm.URI {
		return internedTriple{}, fmt.Errorf("core: predicate must be a URI, got %s", prop)
	}
	var err error
	if sub, err = s.resolveBlankLocked(modelID, sub); err != nil {
		return internedTriple{}, err
	}
	if obj, err = s.resolveBlankLocked(modelID, obj); err != nil {
		return internedTriple{}, err
	}
	sid, err := s.internValueLocked(sub)
	if err != nil {
		return internedTriple{}, err
	}
	pid, err := s.internValueLocked(prop)
	if err != nil {
		return internedTriple{}, err
	}
	oid, err := s.internValueLocked(obj)
	if err != nil {
		return internedTriple{}, err
	}
	// Canonical object ID (CANON_END_NODE_ID): typed literals match on
	// their canonical form.
	canonID := oid
	if canon := rdfterm.Canonical(obj); !canon.Equal(obj) {
		if canonID, err = s.internValueLocked(canon); err != nil {
			return internedTriple{}, err
		}
	}
	return internedTriple{sub: sub, prop: prop, obj: obj, sid: sid, pid: pid, oid: oid, canonID: canonID}, nil
}

// insertLinkLocked is the link phase: with all values interned, find or
// create the rdf_link$ row. Caller holds s.mu for writing.
func (s *Store) insertLinkLocked(modelID int64, it internedTriple, context string) (TripleS, bool, error) {
	sub, prop, obj := it.sub, it.prop, it.obj
	sid, pid, oid, canonID := it.sid, it.pid, it.oid, it.canonID
	// Does the triple already exist in this model?
	mspoKey := reldb.Key{reldb.Int(modelID), reldb.Int(sid), reldb.Int(pid), reldb.Int(canonID)}
	if rid, ok := s.linkMSPO.LookupOne(mspoKey); ok {
		r, err := s.links.Get(rid)
		if err != nil {
			return TripleS{}, false, err
		}
		// Repeated insert: bump COST (§4: "the number of times the triple
		// is stored in an application table").
		newCost := r[lcCost].Int64() + 1
		if err := s.links.UpdateColumn(rid, "COST", reldb.Int(newCost)); err != nil {
			return TripleS{}, false, err
		}
		// Context upgrade I → D when the triple is now asserted as fact.
		newCtx := r[lcContext].Str()
		if context == ContextDirect && newCtx == ContextIndirect {
			newCtx = ContextDirect
			if err := s.links.UpdateColumn(rid, "CONTEXT", reldb.String_(newCtx)); err != nil {
				return TripleS{}, false, err
			}
		}
		if err := s.logRecord(wal.Record{
			Type: wal.TypeUpdateLink, LinkID: r[lcLinkID].Int64(),
			Cost: newCost, Context: newCtx,
		}); err != nil {
			return TripleS{}, false, err
		}
		return s.tripleSFromRow(r), false, nil
	}
	// New triple: new LINK_ID; a link is always created per triple (§4).
	linkID := s.linkSeq.Next()
	linkType := rdfterm.LinkType(prop.Value)
	reif := reifFlag(sub, prop, obj)
	row := reldb.Row{
		reldb.Int(linkID),
		reldb.Int(sid),
		reldb.Int(pid),
		reldb.Int(oid),
		reldb.Int(canonID),
		reldb.String_(linkType),
		reldb.Int(1),
		reldb.String_(context),
		reldb.String_(reif),
		reldb.Int(modelID),
	}
	if _, err := s.links.Insert(row); err != nil {
		return TripleS{}, false, err
	}
	// Subjects and objects are NDM nodes, stored once (§4).
	if err := s.internNodeLocked(sid); err != nil {
		return TripleS{}, false, err
	}
	if err := s.internNodeLocked(oid); err != nil {
		return TripleS{}, false, err
	}
	if err := s.logRecord(wal.Record{
		Type: wal.TypeInsertLink, LinkID: linkID, ModelID: modelID,
		StartID: sid, PropID: pid, EndID: oid, CanonID: canonID,
		LinkType: linkType, Cost: 1, Context: context, Reif: reif == "Y",
	}); err != nil {
		return TripleS{}, false, err
	}
	return TripleS{store: s, TID: linkID, MID: modelID, SID: sid, PID: pid, OID: oid}, true, nil
}

// reifFlag returns "Y" when any component references a reified triple via
// a DBUri (the REIF_LINK column, §4).
func reifFlag(terms ...rdfterm.Term) string {
	for _, t := range terms {
		if t.Kind == rdfterm.URI {
			if _, ok := ParseDBUri(t.Value); ok {
				return "Y"
			}
		}
	}
	return "N"
}

// resolveBlankLocked maps a user-supplied blank node label to its
// model-scoped internal label via rdf_blank_node$, allocating a fresh
// internal label on first use. Blank labels are scoped to a model, so
// _:b1 in two models denotes two different nodes. Caller holds s.mu.
func (s *Store) resolveBlankLocked(modelID int64, t rdfterm.Term) (rdfterm.Term, error) {
	if t.Kind != rdfterm.Blank {
		return t, nil
	}
	key := reldb.Key{reldb.Int(modelID), reldb.String_(t.Value)}
	if rid, ok := s.blankPK.LookupOne(key); ok {
		r, err := s.blanks.Get(rid)
		if err != nil {
			return rdfterm.Term{}, err
		}
		internal, err := s.getValueLocked(r[2].Int64())
		if err != nil {
			return rdfterm.Term{}, err
		}
		return internal, nil
	}
	internal := rdfterm.NewBlank("m" + strconv.FormatInt(modelID, 10) + "b" + strconv.FormatInt(s.blankSeq.Next(), 10))
	vid, err := s.internValueLocked(internal)
	if err != nil {
		return rdfterm.Term{}, err
	}
	if _, err := s.blanks.Insert(reldb.Row{reldb.Int(modelID), reldb.String_(t.Value), reldb.Int(vid)}); err != nil {
		return rdfterm.Term{}, err
	}
	// The internal label consumed a blank-sequence slot; persist the
	// position so a replayed store never re-issues it.
	if err := s.logRecord(wal.Record{
		Type: wal.TypeSeqAdvance, Seq: wal.SeqBlank, SeqValue: s.blankSeq.Current(),
	}); err != nil {
		return rdfterm.Term{}, err
	}
	if err := s.logRecord(wal.Record{
		Type: wal.TypeBlankNode, ModelID: modelID, Name: t.Value, ValueID: vid,
	}); err != nil {
		return rdfterm.Term{}, err
	}
	return internal, nil
}

// NewBlankNode allocates a fresh blank node in a model without inserting
// any triple — used for containers, which hang members off a generated
// blank node (§2).
func (s *Store) NewBlankNode(model string) (rdfterm.Term, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return rdfterm.Term{}, err
	}
	// The label slot consumed here is covered by the SeqAdvance record
	// resolveBlankLocked emits after its own (later) allocation.
	label := "m" + strconv.FormatInt(mid, 10) + "b" + strconv.FormatInt(s.blankSeq.Next(), 10)
	t, err := s.resolveBlankLocked(mid, rdfterm.NewBlank(label))
	if err != nil {
		return rdfterm.Term{}, err
	}
	return t, s.logCommit()
}

// DeleteTriple removes one application-table reference to a triple: the
// link's COST is decremented, and when it reaches zero the link row is
// removed. Nodes are removed only when no other link references them (§4).
func (s *Store) DeleteTriple(model, subject, property, object string, aliases *rdfterm.AliasSet) error {
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return err
	}
	obj, err := parseObjectDB(object, aliases)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return err
	}
	ts, ok, err := s.isTripleTermsLocked(mid, sub, prop, obj)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s %s %s in model %s", ErrNoSuchTriple, subject, property, object, model)
	}
	return s.deleteByLinkIDLocked(ts.TID)
}

func (s *Store) deleteByLinkID(linkID int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteByLinkIDLocked(linkID)
}

func (s *Store) deleteByLinkIDLocked(linkID int64) error {
	rid, ok := s.linkPK.LookupOne(reldb.Key{reldb.Int(linkID)})
	if !ok {
		return fmt.Errorf("%w: LINK_ID %d", ErrNoSuchTriple, linkID)
	}
	r, err := s.links.Get(rid)
	if err != nil {
		return err
	}
	if cost := r[lcCost].Int64(); cost > 1 {
		if err := s.links.UpdateColumn(rid, "COST", reldb.Int(cost-1)); err != nil {
			return err
		}
		if err := s.logRecord(wal.Record{
			Type: wal.TypeUpdateLink, LinkID: linkID,
			Cost: cost - 1, Context: r[lcContext].Str(),
		}); err != nil {
			return err
		}
		return s.logCommit()
	}
	if err := s.links.Delete(rid); err != nil {
		return err
	}
	s.removeNodeIfOrphanLocked(r[lcStartNodeID].Int64())
	s.removeNodeIfOrphanLocked(r[lcEndNodeID].Int64())
	if err := s.logRecord(wal.Record{Type: wal.TypeDeleteLink, LinkID: linkID}); err != nil {
		return err
	}
	return s.logCommit()
}

// IsTriple reports whether the triple exists in the model, returning its
// storage object — the paper's SDO_RDF.IS_TRIPLE().
func (s *Store) IsTriple(model, subject, property, object string, aliases *rdfterm.AliasSet) (TripleS, bool, error) {
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return TripleS{}, false, err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return TripleS{}, false, err
	}
	obj, err := parseObjectDB(object, aliases)
	if err != nil {
		return TripleS{}, false, err
	}
	return s.IsTripleTerms(model, sub, prop, obj)
}

// IsTripleTerms is IsTriple over parsed terms.
func (s *Store) IsTripleTerms(model string, sub, prop, obj rdfterm.Term) (TripleS, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return TripleS{}, false, err
	}
	return s.isTripleTermsLocked(mid, sub, prop, obj)
}

// isTripleTermsLocked is IsTripleTerms with the model resolved and s.mu
// held (either mode).
func (s *Store) isTripleTermsLocked(mid int64, sub, prop, obj rdfterm.Term) (TripleS, bool, error) {
	sid, ok := s.lookupResolvedIDLocked(mid, sub)
	if !ok {
		return TripleS{}, false, nil
	}
	pid, ok := s.lookupValueIDLocked(prop)
	if !ok {
		return TripleS{}, false, nil
	}
	canonID, ok := s.lookupCanonIDLocked(mid, obj)
	if !ok {
		return TripleS{}, false, nil
	}
	rid, ok := s.linkMSPO.LookupOne(reldb.Key{reldb.Int(mid), reldb.Int(sid), reldb.Int(pid), reldb.Int(canonID)})
	if !ok {
		return TripleS{}, false, nil
	}
	r, err := s.links.Get(rid)
	if err != nil {
		return TripleS{}, false, err
	}
	return s.tripleSFromRow(r), true, nil
}

// lookupResolvedIDLocked maps a term (resolving model-scoped blank labels,
// without allocating) to its VALUE_ID. Blank labels are first resolved
// through rdf_blank_node$ (user labels); labels that are already internal
// (e.g. a blank node read back from query results and used as a
// constraint) fall back to direct value lookup.
func (s *Store) lookupResolvedIDLocked(modelID int64, t rdfterm.Term) (int64, bool) {
	if t.Kind == rdfterm.Blank {
		if rid, ok := s.blankPK.LookupOne(reldb.Key{reldb.Int(modelID), reldb.String_(t.Value)}); ok {
			r, err := s.blanks.Get(rid)
			if err != nil {
				return 0, false
			}
			return r[2].Int64(), true
		}
		return s.lookupValueIDLocked(t)
	}
	return s.lookupValueIDLocked(t)
}

// lookupCanonIDLocked returns the VALUE_ID of the canonical form of an object
// term (what CANON_END_NODE_ID stores).
func (s *Store) lookupCanonIDLocked(modelID int64, obj rdfterm.Term) (int64, bool) {
	if obj.Kind == rdfterm.Blank {
		return s.lookupResolvedIDLocked(modelID, obj)
	}
	return s.lookupValueIDLocked(rdfterm.Canonical(obj))
}

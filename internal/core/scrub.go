package core

import (
	"context"
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Sliced background scrubbing. A full CheckInvariants pass holds the read
// lock for the whole store scan, which starves writers on large stores. A
// Scrub runs the same checks in bounded slices: each Step takes the read
// lock, audits at most one slice of rdf_link$ rows (by LINK_ID cursor),
// and releases the lock, so writers interleave freely between slices.
//
// Per-row checks (dangling value IDs, COST, CONTEXT/REIF_LINK domains,
// LINK_TYPE vs. predicate, MODEL_ID resolution) are validated under the
// same lock hold that read the row, so they are sound regardless of
// concurrent mutation. Cross-row checks (duplicate MSPO keys, the
// rdf_node$ set matching link usage) compare rows observed under
// different lock holds; if the store changed between slices they can
// misfire, so the Scrub tracks a cheap epoch (sequence cursors + table
// lengths) and quarantines the cross-row findings of any sweep the epoch
// invalidates, reporting Interrupted instead of false violations.
//
// The sweep also accumulates per-model Statistics — the scrubber is the
// "periodically run CheckInvariants and ModelStatistics" loop of the
// supervisor — which inherit the same caveat: on an interrupted sweep
// they describe a smear of store states, not one snapshot.

// ScrubReport summarizes one completed sweep.
type ScrubReport struct {
	Slices     int                   // lock acquisitions used by the sweep
	Links      int                   // rdf_link$ rows audited
	Violations []error               // invariant violations found
	Stats      map[string]Statistics // per-model statistics (by model name)
	// Interrupted is true when mutations landed between slices: cross-row
	// checks were skipped (their findings could be stale) and Stats spans
	// several store states. Per-row violations are still reliable.
	Interrupted bool
}

// Scrub is one in-progress sweep. Not safe for concurrent use; create
// with NewScrub and call Step until it reports done (or use ScrubPass).
type Scrub struct {
	s     *Store
	slice int

	started bool
	done    bool
	cursor  int64      // next LINK_ID to audit
	epoch   scrubEpoch // store epoch at the previous slice boundary
	dirty   bool       // epoch changed mid-sweep

	audit  *linkAudit
	stats  map[int64]*Statistics
	report ScrubReport
	dups   []error // quarantined cross-row findings (kept only if clean)
}

// scrubEpoch is a cheap fingerprint of store mutation state: every
// mutation either allocates from a sequence or changes a table length,
// so an unchanged epoch across a slice boundary means no mutation
// committed in between.
type scrubEpoch struct {
	valueSeq, linkSeq, modelSeq, blankSeq  int64
	links, nodes, values, models, blankLen int
}

// NewScrub starts a sweep auditing at most slice links per Step.
// slice <= 0 selects a default sized so typical stores finish in a few
// hundred lock acquisitions.
func (s *Store) NewScrub(slice int) *Scrub {
	if slice <= 0 {
		slice = 1024
	}
	return &Scrub{
		s:     s,
		slice: slice,
		audit: newLinkAudit(),
		stats: map[int64]*Statistics{},
	}
}

// epochLocked snapshots the mutation fingerprint. Caller holds s.mu.
func (s *Store) epochLocked() scrubEpoch {
	return scrubEpoch{
		valueSeq: s.valueSeq.Current(),
		linkSeq:  s.linkSeq.Current(),
		modelSeq: s.modelSeq.Current(),
		blankSeq: s.blankSeq.Current(),
		links:    s.links.Len(),
		nodes:    s.nodes.Len(),
		values:   s.values.Len(),
		models:   s.models.Len(),
		blankLen: s.blanks.Len(),
	}
}

// Step audits the next slice under one read-lock hold and reports
// whether the sweep is complete. After it returns true, Report holds the
// final result and further Steps are no-ops.
func (sc *Scrub) Step() bool {
	if sc.done {
		return true
	}
	s := sc.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc.report.Slices++

	// Mutations cannot land while we hold the read lock, so the epoch
	// observed here also describes the store at the end of this slice.
	now := s.epochLocked()
	if sc.started && now != sc.epoch {
		sc.dirty = true
	}
	sc.started = true
	sc.epoch = now

	addf := func(format string, args ...interface{}) {
		sc.report.Violations = append(sc.report.Violations, fmt.Errorf(format, args...))
	}
	dupf := func(format string, args ...interface{}) {
		sc.dups = append(sc.dups, fmt.Errorf(format, args...))
	}

	// Audit up to slice links starting at the cursor. The LINK_ID cursor
	// is stable across mutations: deletions skip ahead harmlessly and
	// insertions always allocate IDs past any cursor that has already
	// swept them (sequence IDs are never reused).
	n := 0
	s.linkPK.Scan(reldb.Key{reldb.Int(sc.cursor)}, nil, func(key reldb.Key, rid reldb.RowID) bool {
		sc.cursor = key[0].Int64() + 1
		n++
		sc.report.Links++
		r, err := s.links.Get(rid)
		if err != nil {
			addf("link %d: indexed in rdf_link$ PK but unreadable: %v", key[0].Int64(), err)
			return n < sc.slice
		}
		s.checkLinkLocked(r, sc.audit, addf, dupf)
		sc.statLocked(r)
		return n < sc.slice
	})
	if n == sc.slice {
		return false // more links remain (or the slice ended exactly at the tail; next Step finishes)
	}

	// Tail reached: finish with the cross-row and small-table checks.
	if sc.dirty {
		sc.report.Interrupted = true
	} else {
		sc.report.Violations = append(sc.report.Violations, sc.dups...)
		s.checkNodeSetLocked(sc.audit, addf)
	}
	s.checkBlanksLocked(addf)
	sc.resolveStatsLocked()
	sc.done = true
	return true
}

// statLocked folds one link row into the per-model statistics, mirroring
// ModelStatistics. Caller holds s.mu.
func (sc *Scrub) statLocked(r reldb.Row) {
	s := sc.s
	mid := r[lcModelID].Int64()
	st := sc.stats[mid]
	if st == nil {
		st = &Statistics{ByLinkType: map[string]int{}}
		sc.stats[mid] = st
	}
	st.Triples++
	st.ByLinkType[r[lcLinkType].Str()]++
	switch r[lcContext].Str() {
	case ContextDirect:
		st.Direct++
	case ContextIndirect:
		st.Indirect++
	}
	if r[lcReifLink].Str() != "Y" {
		return
	}
	// Reification rows specifically: DBUri subject, rdf:type predicate,
	// rdf:Statement object. Unresolvable IDs are already reported as
	// dangling by checkLinkLocked; skip them here without double-reporting.
	sub, err := s.getValueLocked(r[lcStartNodeID].Int64())
	if err != nil {
		return
	}
	if _, isDBUri := ParseDBUri(sub.Value); !isDBUri {
		return
	}
	prop, err := s.getValueLocked(r[lcPValueID].Int64())
	if err != nil || prop.Value != rdfterm.RDFType {
		return
	}
	obj, err := s.getValueLocked(r[lcEndNodeID].Int64())
	if err != nil || obj.Value != rdfterm.RDFStatement {
		return
	}
	st.Reified++
}

// resolveStatsLocked converts the per-model-ID accumulators into the
// by-name report map. Models dropped mid-sweep keep a numeric key so
// their counts aren't silently lost. Caller holds s.mu.
func (sc *Scrub) resolveStatsLocked() {
	sc.report.Stats = make(map[string]Statistics, len(sc.stats))
	for mid, st := range sc.stats {
		name := fmt.Sprintf("#%d", mid)
		if rid, ok := sc.s.modelPK.LookupOne(reldb.Key{reldb.Int(mid)}); ok {
			if r, err := sc.s.models.Get(rid); err == nil {
				name = r[mcModelName].Str()
			}
		}
		sc.report.Stats[name] = *st
	}
}

// Report returns the sweep result; meaningful once Step has returned
// true (partial counts before that).
func (sc *Scrub) Report() ScrubReport { return sc.report }

// ScrubPass runs a complete sweep, yielding the read lock between slices
// and polling ctx at each boundary. This is the scrubber's unit of work:
// the supervisor calls it on a timer and escalates on Violations.
func (s *Store) ScrubPass(ctx context.Context, slice int) (ScrubReport, error) {
	sc := s.NewScrub(slice)
	for !sc.Step() {
		if err := ctx.Err(); err != nil {
			return sc.Report(), fmt.Errorf("core: scrub: %w", err)
		}
	}
	return sc.Report(), nil
}

package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// Atomic checkpoint persistence. A checkpoint must never leave a
// half-written snapshot shadowing the previous good one: SaveFile stages
// the image in a sibling *.tmp file, fsyncs it, renames it over the
// target (atomic on POSIX filesystems), and fsyncs the directory so the
// rename itself is durable. A crash at any point leaves either the old
// snapshot or the new one — plus, at worst, a stray *.tmp that recovery
// removes.

// tmpSuffix marks an in-progress snapshot write.
const tmpSuffix = ".tmp"

// SaveFile writes a snapshot of the store to path atomically.
func (s *Store) SaveFile(path string) error {
	return s.SaveFileAt(path, 0)
}

// SaveFileAt is SaveFile recording walSeq as the segmented-WAL
// watermark (see SaveAt).
func (s *Store) SaveFileAt(path string, walSeq int64) error {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := s.SaveAt(f, walSeq); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: publishing %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Filesystems that refuse to fsync directories (some network mounts) are
// tolerated: the rename is still atomic, only its durability ordering is
// weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// RemoveStaleSnapshot deletes the *.tmp left behind by a checkpoint that
// crashed before its rename. Call before loading a snapshot; a missing
// tmp is not an error.
func RemoveStaleSnapshot(path string) {
	os.Remove(path + tmpSuffix)
}

// LoadFile rebuilds a store from the snapshot at path, first removing
// any stale in-progress *.tmp sibling. The *.tmp is never loaded — it
// may be truncated mid-write — so a crash during checkpoint can only
// surface the previous good snapshot.
func LoadFile(path string) (*Store, error) {
	s, _, err := LoadFileAt(path)
	return s, err
}

// LoadFileAt is LoadFile returning also the snapshot's segmented-WAL
// watermark (0 when the snapshot predates segmented logs).
func LoadFileAt(path string) (*Store, int64, error) {
	RemoveStaleSnapshot(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return LoadAt(f)
}

// RecoverFiles rebuilds a store from an on-disk checkpoint + WAL pair:
// stale snapshot tmp removed, snapshot loaded when present (fresh store
// otherwise), WAL opened (created when absent) with its torn tail
// truncated, and the verified records replayed. The returned log is
// positioned for appending; attach it (or a wal.Group over it) with
// SetDurability to continue mutating durably.
func RecoverFiles(snapPath, walPath string) (*Store, *wal.Log, RecoverInfo, error) {
	return RecoverFilesWith(snapPath, walPath, wal.OpenFile)
}

// RecoverFilesWith is RecoverFiles with an injectable WAL opener (tests
// substitute fault-wrapped files via wal.OpenFileWith).
func RecoverFilesWith(snapPath, walPath string, openWAL func(string) (*wal.Log, wal.ScanResult, error)) (*Store, *wal.Log, RecoverInfo, error) {
	var s *Store
	if snapPath != "" {
		var err error
		s, err = LoadFile(snapPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, RecoverInfo{}, err
		}
	}
	if s == nil {
		s = New()
	}
	log, res, err := openWAL(walPath)
	if err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	if err := s.Replay(res.Records); err != nil {
		log.Close()
		return nil, nil, RecoverInfo{}, err
	}
	return s, log, RecoverInfo{
		Applied:    len(res.Records),
		ValidBytes: res.ValidBytes,
		Truncated:  res.Truncated,
		TailErr:    res.TailErr,
	}, nil
}

// Checkpoint makes the store's current state the new durable baseline:
// the snapshot is written atomically (SaveFile), then the WAL is
// truncated back to its header. Readers proceed throughout (Save holds
// only the read lock); the caller must ensure no mutation commits
// between the snapshot and the truncation — the supervisor does this by
// excluding mutations for the duration, single-threaded CLIs get it for
// free. A crash after the snapshot rename but before the truncation
// leaves a WAL whose records the snapshot already contains; replaying
// them fails loudly on duplicate IDs rather than corrupting silently —
// restart recovery from the snapshot alone in that case. (The segmented
// CheckpointDir closes that window with a watermark.)
func Checkpoint(s *Store, snapPath string, log *wal.Log) error {
	return CheckpointCtx(context.Background(), s, snapPath, log)
}

// CheckpointCtx is Checkpoint recording its phases — snapshot write,
// WAL truncation — on the span carried by ctx (see internal/trace).
// The context is not consulted for cancellation: a checkpoint, once
// started, must reach one of its documented crash-safe states.
func CheckpointCtx(ctx context.Context, s *Store, snapPath string, log *wal.Log) error {
	t0 := s.met.startTimer()
	sp := trace.FromContext(ctx)
	var phaseStart time.Time
	if sp != nil {
		phaseStart = time.Now()
	}
	if err := s.SaveFile(snapPath); err != nil {
		sp.AddCompleted("core.snapshot", phaseStart, since(sp, phaseStart), nil, true)
		return err
	}
	if sp != nil {
		now := time.Now()
		sp.AddCompleted("core.snapshot", phaseStart, now.Sub(phaseStart),
			map[string]string{"path": snapPath}, false)
		phaseStart = now
	}
	if log != nil {
		if err := log.Reset(); err != nil {
			sp.AddCompleted("core.wal_reset", phaseStart, since(sp, phaseStart), nil, true)
			return fmt.Errorf("core: checkpoint: truncating WAL: %w", err)
		}
	}
	sp.AddCompleted("core.wal_reset", phaseStart, since(sp, phaseStart), nil, false)
	s.met.onCheckpoint(t0)
	return nil
}

// CheckpointDir is Checkpoint for a segmented WAL, with the crash window
// the single-file protocol documents closed by a watermark:
//
//  1. Rotate — every mutation the snapshot will contain now lives in
//     segments below the fresh segment's number N.
//  2. SaveFileAt(snapPath, N) — the snapshot lands atomically, recording
//     N as its watermark.
//  3. RemoveBelow(N) — the old segments are deleted.
//
// A crash before 2 leaves extra segments that replay idempotently onto
// the old snapshot; a crash between 2 and 3 leaves segments below the
// new snapshot's watermark, which recovery deletes instead of replaying
// (wal.OpenDir finishes the retention). No window double-applies or
// loses an acked commit. The caller must exclude mutations for the
// duration, exactly as for Checkpoint.
func CheckpointDir(s *Store, snapPath string, d *wal.Dir) error {
	return CheckpointDirCtx(context.Background(), s, snapPath, d)
}

// CheckpointDirCtx is CheckpointDir recording its phases — rotate,
// snapshot write, retention — on the span carried by ctx.
func CheckpointDirCtx(ctx context.Context, s *Store, snapPath string, d *wal.Dir) error {
	t0 := s.met.startTimer()
	sp := trace.FromContext(ctx)
	var phaseStart time.Time
	if sp != nil {
		phaseStart = time.Now()
	}
	seq, err := d.Rotate()
	if err != nil {
		sp.AddCompleted("core.wal_rotate", phaseStart, since(sp, phaseStart), nil, true)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if sp != nil {
		now := time.Now()
		sp.AddCompleted("core.wal_rotate", phaseStart,
			now.Sub(phaseStart), map[string]string{"watermark": fmt.Sprint(seq)}, false)
		phaseStart = now
	}
	if err := s.SaveFileAt(snapPath, seq); err != nil {
		sp.AddCompleted("core.snapshot", phaseStart, since(sp, phaseStart), nil, true)
		return err
	}
	if sp != nil {
		now := time.Now()
		sp.AddCompleted("core.snapshot", phaseStart, now.Sub(phaseStart),
			map[string]string{"path": snapPath}, false)
		phaseStart = now
	}
	removed, err := d.RemoveBelow(seq)
	if err != nil {
		sp.AddCompleted("core.wal_retention", phaseStart, since(sp, phaseStart), nil, true)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if sp != nil {
		sp.AddCompleted("core.wal_retention", phaseStart, time.Since(phaseStart),
			map[string]string{"removed_segments": fmt.Sprint(removed)}, false)
	}
	s.met.onCheckpoint(t0)
	return nil
}

// RecoverDir rebuilds a store from an on-disk checkpoint + segmented WAL
// directory: stale snapshot tmp removed, snapshot loaded when present
// (fresh store otherwise), segments below the snapshot's watermark
// deleted, the rest scanned (torn tail tolerated in the final segment
// only) and replayed. The returned Dir is positioned for appending.
func RecoverDir(snapPath, walDir string, opts wal.DirOptions) (*Store, *wal.Dir, RecoverInfo, error) {
	return RecoverDirWith(snapPath, walDir, opts, wal.OpenDir)
}

// RecoverDirWith is RecoverDir with an injectable opener (tests
// substitute fault-wrapped segment files).
func RecoverDirWith(snapPath, walDir string, opts wal.DirOptions,
	openDir func(string, int64, wal.DirOptions) (*wal.Dir, wal.DirScanResult, error)) (*Store, *wal.Dir, RecoverInfo, error) {
	var s *Store
	var walSeq int64
	if snapPath != "" {
		var err error
		s, walSeq, err = LoadFileAt(snapPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, RecoverInfo{}, err
		}
	}
	if s == nil {
		s = New()
		walSeq = 0
	}
	d, res, err := openDir(walDir, walSeq, opts)
	if err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	if err := s.Replay(res.Records); err != nil {
		d.Close()
		return nil, nil, RecoverInfo{}, err
	}
	return s, d, RecoverInfo{
		Applied:    len(res.Records),
		ValidBytes: res.TotalBytes,
		Truncated:  res.Truncated,
		TailErr:    res.TailErr,
		Segments:   res.Segments,
		Retired:    res.Removed,
	}, nil
}

package supervise

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Observability. Every supervisor notification — health transitions,
// recovery attempts, scrub findings — flows through one funnel
// (notify/onScrub) into the obs registry: a state gauge and counters
// for dashboards, plus structured events in the registry's ring so
// tests and /events can assert on exactly what happened and why. The
// OnTransition callback remains for programmatic consumers; the event
// log is the durable-within-process record.

// Metrics instruments a Supervisor against an obs registry. nil
// disables instrumentation (the hooks are nil-receiver no-ops).
type Metrics struct {
	state            *obs.Gauge
	transitions      *obs.Counter
	degraded         *obs.Counter
	recoveryAttempts *obs.Counter
	recoveries       *obs.Counter
	scrubPasses      *obs.Counter
	scrubViolations  *obs.Counter
	scrubDur         *obs.Histogram
	autoCheckpoints  *obs.Counter
	ckptDur          *obs.Histogram
	events           *obs.EventLog
}

// NewMetrics registers the supervisor metric families on reg. Returns
// nil when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		state:            reg.Gauge("supervise_state", "current health state (0 Healthy, 1 Degraded, 2 Recovering, 3 Failed, 4 Degraded(disk))"),
		transitions:      reg.Counter("supervise_transitions_total", "health-state transitions"),
		degraded:         reg.Counter("supervise_degraded_total", "faults that tripped the store into Degraded"),
		recoveryAttempts: reg.Counter("supervise_recovery_attempts_total", "recovery attempts started"),
		recoveries:       reg.Counter("supervise_recoveries_total", "completed Degraded->Healthy cycles"),
		scrubPasses:      reg.Counter("supervise_scrub_passes_total", "completed background scrub sweeps"),
		scrubViolations:  reg.Counter("supervise_scrub_violations_total", "invariant violations found by scrub sweeps"),
		scrubDur:         reg.Histogram("supervise_scrub_seconds", "scrub sweep duration", obs.DurationBuckets),
		autoCheckpoints:  reg.Counter("supervise_auto_checkpoints_total", "checkpoints taken by the automatic policy loop"),
		ckptDur:          reg.Histogram("supervise_checkpoint_seconds", "automatic checkpoint duration", obs.DurationBuckets),
		events:           reg.Events(),
	}
}

// startTimer returns now, or the zero time when metrics are disabled.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// onTransition updates the state series and emits the structured
// transition event (fields: from, to, state, reason, rootCause,
// attempt).
func (m *Metrics) onTransition(tr Transition) {
	if m == nil {
		return
	}
	m.state.Set(int64(tr.To))
	m.transitions.Inc()
	switch tr.To {
	case Degraded, DegradedDisk:
		m.degraded.Inc()
	case Recovering:
		m.recoveryAttempts.Inc()
	case Healthy:
		m.recoveries.Inc()
	}
	fields := map[string]string{
		"from":    tr.From.String(),
		"to":      tr.To.String(),
		"state":   tr.To.String(),
		"attempt": strconv.Itoa(tr.Attempt),
	}
	if tr.Reason != nil {
		fields["reason"] = tr.Reason.Error()
	}
	if tr.RootCause != nil {
		fields["rootCause"] = tr.RootCause.Error()
	}
	m.events.Emit("supervise", "transition", fields)
}

// markHealthy initializes the state gauge at Open, before any
// transition fires.
func (m *Metrics) markHealthy() {
	if m == nil {
		return
	}
	m.state.Set(int64(Healthy))
}

// onScrub records one completed sweep; sweeps with findings also land
// in the event log (the escalation to Degraded emits its own
// transition event with the ScrubError as rootCause).
func (m *Metrics) onScrub(t0 time.Time, rep core.ScrubReport) {
	if m == nil {
		return
	}
	m.scrubPasses.Inc()
	m.scrubViolations.Add(int64(len(rep.Violations)))
	m.scrubDur.ObserveSince(t0)
	if len(rep.Violations) > 0 {
		m.events.Emit("supervise", "scrub_violations", map[string]string{
			"links":      strconv.Itoa(rep.Links),
			"violations": strconv.Itoa(len(rep.Violations)),
			"first":      rep.Violations[0].Error(),
		})
	}
}

// onAutoCheckpoint records a policy-driven checkpoint. urgent marks
// soft-watermark (disk pressure) triggers vs routine interval/size ones.
func (m *Metrics) onAutoCheckpoint(urgent bool, t0 time.Time) {
	if m == nil {
		return
	}
	m.autoCheckpoints.Inc()
	m.ckptDur.ObserveSince(t0)
	m.events.Emit("supervise", "auto_checkpoint", map[string]string{
		"trigger": ckptTrigger(urgent),
	})
}

// onAutoCheckpointError records a policy-driven checkpoint that failed
// (and degraded the supervisor).
func (m *Metrics) onAutoCheckpointError(urgent bool, err error) {
	if m == nil {
		return
	}
	m.events.Emit("supervise", "auto_checkpoint_error", map[string]string{
		"trigger": ckptTrigger(urgent),
		"error":   err.Error(),
	})
}

func ckptTrigger(urgent bool) string {
	if urgent {
		return "soft_watermark"
	}
	return "policy"
}

// onScrubError records a sweep that could not complete (and is being
// escalated by the caller).
func (m *Metrics) onScrubError(err error) {
	if m == nil {
		return
	}
	m.events.Emit("supervise", "scrub_error", map[string]string{"error": err.Error()})
}

// Healthz adapts the supervisor's health snapshot to the admin
// endpoint's payload: anything but Healthy answers 503, with the
// active fault as the reason and recovery/scrub counters as detail.
func (sv *Supervisor) Healthz() obs.Health {
	h := sv.Health()
	out := obs.Health{
		Healthy: h.State == Healthy,
		State:   h.State.String(),
		Detail: map[string]any{
			"recoveries":      h.Recoveries,
			"scrubs":          h.Scrubs,
			"scrubLinks":      h.LastScrub.Links,
			"scrubViolations": len(h.LastScrub.Violations),
		},
	}
	if h.Reason != nil {
		out.Reason = h.Reason.Error()
	}
	return out
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the subset this repo
// emits — counter, gauge, and histogram families with # HELP / # TYPE
// headers — plus a strict parser used by the handler's golden test and
// the CI scrape check (tools/obscheck), so "the exposition stays
// parseable" is enforced by the same code in both places.

// WriteProm renders the snapshot in Prometheus text format.
func (s Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		writeHeader(bw, c.Name, c.Help, "counter")
		fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(bw, g.Name, g.Help, "gauge")
		fmt.Fprintf(bw, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		writeHeader(bw, h.Name, h.Help, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line: a metric name, its (raw) label
// block, and the value.
type Sample struct {
	Name   string
	Labels string // raw text inside {...}, "" when absent
	Value  float64
}

// Exposition is the parsed form of a /metrics page.
type Exposition struct {
	// Types maps each declared family name to its TYPE (counter, gauge,
	// histogram, summary, untyped).
	Types map[string]string
	// Samples holds every sample line in input order.
	Samples []Sample
}

// Families returns the number of declared metric families.
func (e *Exposition) Families() int { return len(e.Types) }

// HasPrefix reports whether any declared family name starts with prefix.
func (e *Exposition) HasPrefix(prefix string) bool {
	for name := range e.Types {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// validTypes are the TYPE values the exposition format permits.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses Prometheus text format strictly: every line
// must be a well-formed comment, TYPE/HELP header, or sample; histogram
// families must have consistent _count and +Inf bucket values. The
// first malformed line fails the parse.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}}
	infCount := map[string]float64{}   // histogram name -> +Inf bucket value
	countVal := map[string]float64{}   // histogram name -> _count value
	lastBucket := map[string]float64{} // histogram name -> previous cumulative bucket

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, exp); err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)

		// Histogram shape checks, driven by declared types.
		if base, ok := strings.CutSuffix(s.Name, "_bucket"); ok && exp.Types[base] == "histogram" {
			le := labelValue(s.Labels, "le")
			if le == "" {
				return nil, fmt.Errorf("obs: exposition line %d: %s_bucket without le label", lineNo, base)
			}
			if s.Value < lastBucket[base] {
				return nil, fmt.Errorf("obs: exposition line %d: %s buckets not cumulative", lineNo, base)
			}
			lastBucket[base] = s.Value
			if le == "+Inf" {
				infCount[base] = s.Value
			}
		}
		if base, ok := strings.CutSuffix(s.Name, "_count"); ok && exp.Types[base] == "histogram" {
			countVal[base] = s.Value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		inf, okInf := infCount[name]
		cnt, okCnt := countVal[name]
		if !okInf || !okCnt {
			return nil, fmt.Errorf("obs: histogram %s missing +Inf bucket or _count", name)
		}
		if inf != cnt {
			return nil, fmt.Errorf("obs: histogram %s: +Inf bucket %g != count %g", name, inf, cnt)
		}
	}
	return exp, nil
}

// parseHeader validates a # comment line, recording TYPE declarations.
func parseHeader(line string, exp *Exposition) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid family name %q", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := exp.Types[name]; ok && prev != typ {
			return fmt.Errorf("family %s declared both %s and %s", name, prev, typ)
		}
		exp.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !nameRE.MatchString(fields[2]) {
			return fmt.Errorf("invalid family name %q", fields[2])
		}
	}
	return nil
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		s.Labels = rest[1:end]
		if err := validateLabels(s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return s, nil
}

// parseValue accepts decimal floats plus the exposition spellings of
// infinity and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels checks `k="v",k2="v2"` shape.
func validateLabels(block string) error {
	if block == "" {
		return nil
	}
	for _, pair := range splitLabels(block) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !nameRE.MatchString(k) {
			return fmt.Errorf("malformed label %q", pair)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value %q", pair)
		}
	}
	return nil
}

// splitLabels splits on commas outside quotes.
func splitLabels(block string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	return append(out, block[start:])
}

// labelValue extracts one label's (unescaped) value from a raw block.
func labelValue(block, key string) string {
	for _, pair := range splitLabels(block) {
		k, v, ok := strings.Cut(pair, "=")
		if ok && k == key && len(v) >= 2 {
			return strings.ReplaceAll(v[1:len(v)-1], `\"`, `"`)
		}
	}
	return ""
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_ops_total", "operations served").Add(42)
	r.Gauge("demo_depth", "queue depth").Set(7)
	h := r.Histogram("demo_latency_seconds", "op latency", DurationBuckets)
	h.Observe(0.002)
	h.Observe(0.3)
	r.Events().Emit("demo", "started", map[string]string{"pid": "1"})
	r.Events().Emit("demo", "tick", nil)
	return r
}

// TestHandlerMetricsGolden scrapes /metrics and re-parses it with the
// same strict parser CI uses — the golden property is "parseable and
// complete", not byte-for-byte output.
func TestHandlerMetricsGolden(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRegistry(), nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want 0.0.4 exposition", ct)
	}
	exp, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
	if exp.Types["demo_ops_total"] != "counter" ||
		exp.Types["demo_depth"] != "gauge" ||
		exp.Types["demo_latency_seconds"] != "histogram" {
		t.Fatalf("families missing or mistyped: %v", exp.Types)
	}
	var gotCounter bool
	for _, s := range exp.Samples {
		if s.Name == "demo_ops_total" && s.Value == 42 {
			gotCounter = true
		}
	}
	if !gotCounter {
		t.Fatal("demo_ops_total 42 not in exposition")
	}
}

func TestHandlerHealthz(t *testing.T) {
	state := Health{Healthy: true, State: "Healthy"}
	srv := httptest.NewServer(NewHandler(nil, func() Health { return state }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy /healthz: %s", resp.Status)
	}

	// Force a Degraded state: 503 plus a JSON body carrying the reason.
	state = Health{
		Healthy: false, State: "Degraded", Reason: "scrub found dangling link",
		Detail: map[string]any{"recoveries": 2},
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded /healthz: %s, want 503", resp.Status)
	}
	var got Health
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Healthy || got.State != "Degraded" || got.Reason == "" {
		t.Fatalf("degraded payload = %+v", got)
	}
}

func TestHandlerEvents(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRegistry(), nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Name != "started" || events[1].Name != "tick" {
		t.Fatalf("events = %+v", events)
	}

	resp, err = srv.Client().Get(srv.URL + "/events?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events = nil
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "tick" {
		t.Fatalf("?n=1 events = %+v", events)
	}
}

// A nil registry must still serve an empty-but-valid admin surface: the
// CLIs pass nil when -admin is set without any instrumented subsystem.
func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := ParseExposition(resp.Body); err != nil {
		t.Fatalf("empty exposition unparseable: %v", err)
	}

	resp, err = srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("/events on nil registry must be a JSON array: %v", err)
	}
	if events == nil || len(events) != 0 {
		t.Fatalf("events = %v, want []", events)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: %s", resp.Status)
	}
}

package ndm

import (
	"testing"

	"repro/internal/obs"
)

func TestInstrumentCountsTraversalSteps(t *testing.T) {
	net := buildNet(t, 4, [][3]int64{{1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {1, 4, 10}})
	reg := obs.NewRegistry()
	g := NewMetrics(reg).Instrument(net)

	p, err := ShortestPath(g, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 3 {
		t.Fatalf("cost = %g, want 3", p.Cost)
	}
	steps, ok := reg.Snapshot().Counter("ndm_traversal_steps_total")
	if !ok {
		t.Fatal("ndm_traversal_steps_total not registered")
	}
	// Dijkstra from 1 expands the out-links of every settled node: at
	// least the 4 links of the network.
	if steps.Value < 4 {
		t.Fatalf("steps = %d, want >= 4", steps.Value)
	}

	before := steps.Value
	if cyclic, _ := HasCycle(g); cyclic {
		t.Fatal("DAG reported cyclic")
	}
	after, _ := reg.Snapshot().Counter("ndm_traversal_steps_total")
	if after.Value <= before {
		t.Fatalf("HasCycle added no steps (%d -> %d)", before, after.Value)
	}
}

func TestInstrumentEarlyStopCountsVisited(t *testing.T) {
	net := buildNet(t, 5, nil)
	reg := obs.NewRegistry()
	g := NewMetrics(reg).Instrument(net)

	// Stop after two nodes: only the visited elements count as steps.
	seen := 0
	g.Nodes(func(int64) bool {
		seen++
		return seen < 2
	})
	steps, _ := reg.Snapshot().Counter("ndm_traversal_steps_total")
	if steps.Value != 2 {
		t.Fatalf("steps = %d, want 2 (visited nodes only)", steps.Value)
	}
}

func TestNilMetricsInstrumentIsIdentity(t *testing.T) {
	net := buildNet(t, 2, [][3]int64{{1, 2, 1}})
	var m *Metrics = NewMetrics(nil)
	if m != nil {
		t.Fatal("NewMetrics(nil) != nil")
	}
	if g := m.Instrument(net); g != Graph(net) {
		t.Fatal("nil Metrics must return the graph unchanged")
	}
}

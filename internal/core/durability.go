package core

import (
	"errors"
	"fmt"

	"repro/internal/wal"
)

// ErrDurability marks a mutation error caused by the durability sink
// (WAL append or commit failure) rather than by the mutation itself. At
// that point the in-memory store is ahead of the log: the mutation was
// not acknowledged, but its in-memory effects may persist and will be
// captured by the next checkpoint. Supervisors match this sentinel with
// errors.Is to transition the store into degraded (read-only) mode.
var ErrDurability = errors.New("core: durability sink failed")

// Durability receives the store's logical mutations as WAL records. The
// paper's Oracle deployment gets redo logging from the engine; here the
// hook is pluggable so the pure in-memory configuration (d == nil) pays
// nothing. *wal.Log is the standard implementation.
//
// Append is called under the store's write lock, once per logical
// mutation, in commit order — any prefix of the record stream is a
// consistent store state. Commit is called at the end of each successful
// public mutation and should make the appended records durable (fsync).
type Durability interface {
	Append(r wal.Record) error
	Commit() error
}

// SetDurability attaches (or, with nil, detaches) a durability sink.
// Attach before sharing the store across goroutines; records are emitted
// only for mutations after the attach, so pair it with an empty log and a
// fresh/recovered store, or checkpoint first.
func (s *Store) SetDurability(d Durability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur = d
}

// logRecord forwards one mutation record to the durability sink. Caller
// holds s.mu. An append failure is returned to the mutating caller: the
// in-memory state is ahead of the log at that point, and the process
// should treat the store as no longer durable.
func (s *Store) logRecord(r wal.Record) error {
	if s.dur == nil {
		return nil
	}
	if err := s.dur.Append(r); err != nil {
		return fmt.Errorf("%w: logging %s: %w", ErrDurability, r.Type, err)
	}
	return nil
}

// logCommit marks the end of a public mutation (the commit point).
func (s *Store) logCommit() error {
	if s.dur == nil {
		return nil
	}
	if err := s.dur.Commit(); err != nil {
		return fmt.Errorf("%w: committing WAL: %w", ErrDurability, err)
	}
	return nil
}

// valueRecord builds the TypeInternValue record for a term assigned vid.
func valueRecord(vid int64, text, valueType, literalType, language string) wal.Record {
	return wal.Record{
		Type:        wal.TypeInternValue,
		ValueID:     vid,
		Text:        text,
		ValueType:   valueType,
		LiteralType: literalType,
		Language:    language,
	}
}

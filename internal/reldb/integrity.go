package reldb

import "fmt"

// CheckIntegrity validates a table's internal consistency — every index
// agrees exactly with the heap — returning all violations found. It backs
// the engine-level property tests and mirrors what a production engine
// would run in a consistency checker (DBVERIFY, CHECK TABLE, …).
//
// Checks per index:
//
//  1. every live heap row has exactly one entry under its computed key;
//  2. every index entry points at a live row whose computed key matches;
//  3. unique indexes hold at most one row per non-NULL key;
//  4. index cardinality equals the live row count.
func (t *Table) CheckIntegrity() []error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var errs []error
	addf := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	live := map[RowID]Row{}
	for id, r := range t.rows {
		if r != nil {
			live[RowID(id)] = r
		}
	}
	if len(live) != t.live {
		addf("table %s: live counter %d, heap has %d live rows", t.name, t.live, len(live))
	}
	for _, ix := range t.ordered {
		entries := 0
		perKey := map[string][]RowID{}
		valid := true
		ix.tree.Ascend(func(k Key, id int64) bool {
			entries++
			r, ok := live[id]
			if !ok {
				addf("index %s.%s: entry %s -> dead row %d", t.name, ix.name, k, id)
				valid = false
				return true
			}
			if got := ix.keyOf(r); got.Compare(k) != 0 {
				addf("index %s.%s: row %d stored under %s, key function says %s",
					t.name, ix.name, id, k, got)
				valid = false
			}
			enc := encodeKey(k)
			perKey[enc] = append(perKey[enc], id)
			return true
		})
		if entries != len(live) {
			addf("index %s.%s: %d entries for %d live rows", t.name, ix.name, entries, len(live))
			valid = false
		}
		// Every live row must be findable under its key.
		for id, r := range live {
			k := ix.keyOf(r)
			found := false
			for _, got := range perKey[encodeKey(k)] {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				addf("index %s.%s: live row %d missing under key %s", t.name, ix.name, id, k)
				valid = false
			}
		}
		if ix.unique && valid {
			for enc, ids := range perKey {
				if len(ids) > 1 && !keyHasNullEncoded(enc, perKey, ix, live, ids) {
					addf("index %s.%s: unique key duplicated across rows %v", t.name, ix.name, ids)
				}
			}
		}
	}
	return errs
}

// keyHasNullEncoded reports whether the duplicated key contains NULL (in
// which case uniqueness is not enforced, matching Insert's behaviour).
func keyHasNullEncoded(_ string, _ map[string][]RowID, ix *Index, live map[RowID]Row, ids []RowID) bool {
	r, ok := live[ids[0]]
	if !ok {
		return false
	}
	return keyHasNull(ix.keyOf(r))
}

package ndm

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/reldb"
)

// buildNet creates a network with nodes 1..n (IDs assigned sequentially
// from 1) and the given links.
func buildNet(t *testing.T, nNodes int, links [][3]int64) *LogicalNetwork {
	t.Helper()
	db := reldb.NewDatabase("test")
	net, err := CreateLogicalNetwork(db, "net")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nNodes; i++ {
		if _, err := net.AddNode(""); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range links {
		if _, err := net.AddLink("", l[0], l[1], float64(l[2])); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestAddNodeLink(t *testing.T) {
	net := buildNet(t, 3, [][3]int64{{1, 2, 5}, {2, 3, 7}})
	if net.NumNodes() != 3 || net.NumLinks() != 2 {
		t.Fatalf("size = %d nodes %d links", net.NumNodes(), net.NumLinks())
	}
	if net.Name() != "net" {
		t.Fatalf("Name = %q", net.Name())
	}
	if !net.HasNode(1) || net.HasNode(99) {
		t.Fatal("HasNode wrong")
	}
	if _, err := net.AddLink("", 1, 99, 1); err == nil {
		t.Fatal("link to missing node accepted")
	}
	if _, err := net.AddLink("", 1, 2, -1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestOutInLinks(t *testing.T) {
	net := buildNet(t, 3, [][3]int64{{1, 2, 5}, {1, 3, 7}, {2, 3, 1}})
	var outs []int64
	net.OutLinks(1, func(_, end int64, _ float64) bool {
		outs = append(outs, end)
		return true
	})
	if len(outs) != 2 {
		t.Fatalf("OutLinks(1) = %v", outs)
	}
	var ins []int64
	net.InLinks(3, func(_, start int64, _ float64) bool {
		ins = append(ins, start)
		return true
	})
	if len(ins) != 2 {
		t.Fatalf("InLinks(3) = %v", ins)
	}
	in, out := Degree(net, 1)
	if in != 0 || out != 2 {
		t.Fatalf("Degree(1) = (%d,%d)", in, out)
	}
}

func TestRemoveLink(t *testing.T) {
	net := buildNet(t, 2, [][3]int64{{1, 2, 5}})
	if err := net.RemoveLink(1); err != nil {
		t.Fatal(err)
	}
	if net.NumLinks() != 0 {
		t.Fatal("link not removed")
	}
	if err := net.RemoveLink(1); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestShortestPath(t *testing.T) {
	// 1 →(1) 2 →(1) 3, plus direct 1 →(5) 3: path through 2 wins.
	net := buildNet(t, 3, [][3]int64{{1, 2, 1}, {2, 3, 1}, {1, 3, 5}})
	p, err := ShortestPath(net, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 2 || len(p.Nodes) != 3 || p.Nodes[1] != 2 {
		t.Fatalf("path = %+v", p)
	}
	if len(p.Links) != 2 {
		t.Fatalf("links = %v", p.Links)
	}
	// Direction matters.
	if _, err := ShortestPath(net, 3, 1); !errors.Is(err, ErrNoPath) {
		t.Fatalf("reverse path err = %v", err)
	}
	// Self path.
	p, err = ShortestPath(net, 2, 2)
	if err != nil || p.Cost != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v, %v", p, err)
	}
	if _, err := ShortestPath(net, 1, 99); err == nil {
		t.Fatal("missing endpoint accepted")
	}
}

func TestWithinCostAndNearestNeighbors(t *testing.T) {
	net := buildNet(t, 5, [][3]int64{{1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {1, 5, 10}})
	within, err := WithinCost(net, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) != 2 || within[0].Node != 2 || within[1].Node != 3 {
		t.Fatalf("WithinCost = %+v", within)
	}
	nn, err := NearestNeighbors(net, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Node != 2 || nn[2].Node != 4 {
		t.Fatalf("NearestNeighbors = %+v", nn)
	}
	// k larger than reachable set.
	nn, _ = NearestNeighbors(net, 1, 100)
	if len(nn) != 4 {
		t.Fatalf("NN(100) = %+v", nn)
	}
}

func TestReachable(t *testing.T) {
	net := buildNet(t, 6, [][3]int64{{1, 2, 1}, {2, 3, 1}, {3, 1, 1}, {4, 5, 1}})
	r, err := Reachable(net, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0] != 2 || r[1] != 3 {
		t.Fatalf("Reachable = %v", r)
	}
	r, _ = Reachable(net, 1, 1)
	if len(r) != 1 || r[0] != 2 {
		t.Fatalf("Reachable depth 1 = %v", r)
	}
	if !IsReachable(net, 1, 3) || IsReachable(net, 1, 5) {
		t.Fatal("IsReachable wrong")
	}
	if !IsReachable(net, 6, 6) {
		t.Fatal("self reachability wrong")
	}
	if IsReachable(net, 1, 99) {
		t.Fatal("missing target reachable")
	}
}

func TestConnectedComponents(t *testing.T) {
	net := buildNet(t, 6, [][3]int64{{1, 2, 1}, {3, 2, 1}, {4, 5, 1}})
	comps := ConnectedComponents(net)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 || comps[0][2] != 3 {
		t.Fatalf("comp 0 = %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 6 {
		t.Fatalf("comp 2 = %v", comps[2])
	}
}

func TestMinimumCostSpanningTree(t *testing.T) {
	// Triangle 1-2 (1), 2-3 (2), 1-3 (10): MCST = {1-2, 2-3} cost 3.
	net := buildNet(t, 3, [][3]int64{{1, 2, 1}, {2, 3, 2}, {1, 3, 10}})
	edges, total, err := MinimumCostSpanningTree(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || total != 3 {
		t.Fatalf("MCST = %+v total %g", edges, total)
	}
	if _, _, err := MinimumCostSpanningTree(net, 99); err == nil {
		t.Fatal("missing root accepted")
	}
}

// Property-style test: Dijkstra distance never exceeds any directly
// sampled random-walk cost on random graphs.
func TestShortestPathNeverBeatenByRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(10)
		var links [][3]int64
		for i := 0; i < n*3; i++ {
			links = append(links, [3]int64{
				int64(rng.Intn(n) + 1), int64(rng.Intn(n) + 1), int64(rng.Intn(9) + 1)})
		}
		net := buildNet(t, n, links)
		src, dst := int64(rng.Intn(n)+1), int64(rng.Intn(n)+1)
		sp, err := ShortestPath(net, src, dst)
		if errors.Is(err, ErrNoPath) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Verify the reported path is consistent: walk it and sum costs.
		if sp.Nodes[0] != src || sp.Nodes[len(sp.Nodes)-1] != dst {
			t.Fatalf("path endpoints wrong: %+v", sp)
		}
		// Random greedy walks from src: if one reaches dst, its cost must
		// be >= sp.Cost.
		for w := 0; w < 30; w++ {
			cur, cost := src, 0.0
			for step := 0; step < 30 && cur != dst; step++ {
				type edge struct {
					end  int64
					cost float64
				}
				var outs []edge
				net.OutLinks(cur, func(_, end int64, c float64) bool {
					outs = append(outs, edge{end, c})
					return true
				})
				if len(outs) == 0 {
					break
				}
				pick := outs[rng.Intn(len(outs))]
				cur, cost = pick.end, cost+pick.cost
			}
			if cur == dst && cost < sp.Cost-1e-9 {
				t.Fatalf("random walk cost %g beats Dijkstra %g", cost, sp.Cost)
			}
		}
	}
}

func TestMCSTSpansComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(8)
		var links [][3]int64
		// Chain guarantees connectivity, then random extras.
		for i := int64(1); i < int64(n); i++ {
			links = append(links, [3]int64{i, i + 1, int64(rng.Intn(9) + 1)})
		}
		for i := 0; i < n; i++ {
			links = append(links, [3]int64{
				int64(rng.Intn(n) + 1), int64(rng.Intn(n) + 1), int64(rng.Intn(9) + 1)})
		}
		net := buildNet(t, n, links)
		edges, _, err := MinimumCostSpanningTree(net, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != n-1 {
			t.Fatalf("MCST has %d edges for %d connected nodes", len(edges), n)
		}
	}
}

# Convenience targets for the reproduction. Everything is stdlib-only Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build vet test race cover bench fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark family per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz passes over every fuzz target (regression corpora run in
# plain `make test` already).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ntriples
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/rdfxml
	$(GO) test -fuzz=FuzzParseObject -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzCanonical -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/match
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/match

# Regenerate the paper's evaluation tables (10k + 100k by default; pass
# SIZES=10000,100000,1000000,5000000 for the full sweep).
SIZES ?= 10000,100000
experiments:
	$(GO) run ./cmd/benchrepro -sizes $(SIZES)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/intelligence
	$(GO) run ./examples/uniprot -triples 10000
	$(GO) run ./examples/network
	$(GO) run ./examples/provenance

clean:
	$(GO) clean ./...

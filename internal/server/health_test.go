package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/supervise"
	"repro/internal/wal"
)

// fakeBackend is a Backend whose health state flips on demand, mimicking
// the supervisor's gating without running a real WAL recovery loop.
type fakeBackend struct {
	s  *core.Store
	mu sync.Mutex
	st supervise.State
}

func newFakeBackend(t testing.TB) *fakeBackend {
	return &fakeBackend{s: testStore(t), st: supervise.Healthy}
}

func (b *fakeBackend) setState(st supervise.State) {
	b.mu.Lock()
	b.st = st
	b.mu.Unlock()
}

func (b *fakeBackend) Store() *core.Store { return b.s }

func (b *fakeBackend) State() supervise.State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

func (b *fakeBackend) Healthz() obs.Health {
	st := b.State()
	return obs.Health{Healthy: st == supervise.Healthy, State: st.String()}
}

// Mutate mirrors the supervisor: writes only while Healthy.
func (b *fakeBackend) Mutate(fn func(*core.Store) error) error {
	switch b.State() {
	case supervise.Healthy:
		return fn(b.s)
	case supervise.Failed:
		return supervise.ErrFailed
	case supervise.DegradedDisk:
		return supervise.ErrDiskFull
	default:
		return supervise.ErrDegraded
	}
}

// request descriptors reused across the table.
var healthEndpoints = []struct {
	name   string
	method string
	target string
	body   any
	write  bool
}{
	{"query", "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, false},
	{"find", "GET", "/find?s=%3Chttp%3A%2F%2Fx%23a%3E", nil, false},
	{"traverse", "POST", "/traverse", map[string]any{"op": "reachable", "source": "<http://x#a>"}, false},
	{"insert", "POST", "/insert", map[string]any{
		"model":   "m",
		"triples": []map[string]string{{"s": "<http://x#h>", "p": "<http://x#p>", "o": "<http://x#h2>"}},
	}, true},
}

// TestHealthStateMapping pins the documented supervisor-state → HTTP
// contract for every endpoint under both degraded-read policies:
//
//	state           writes              reads (RejectDegraded)  reads (ServeDegraded)
//	Healthy         200                 200                     200
//	Degraded        503 + Retry-After   503 + Retry-After       200
//	Degraded(disk)  507 + Retry-After   507 + Retry-After       200
//	Recovering      503 + Retry-After   503 + Retry-After       200
//	Failed          503 (no Retry-After) same                   200
func TestHealthStateMapping(t *testing.T) {
	type want struct {
		status     int
		code       string // error envelope code; "" for success
		retryAfter bool
	}
	cases := []struct {
		state  supervise.State
		policy DegradedReads
		read   want
		write  want
	}{
		{supervise.Healthy, RejectDegraded, want{200, "", false}, want{200, "", false}},
		{supervise.Healthy, ServeDegraded, want{200, "", false}, want{200, "", false}},
		{supervise.Degraded, RejectDegraded, want{503, CodeDegraded, true}, want{503, CodeDegraded, true}},
		{supervise.Degraded, ServeDegraded, want{200, "", false}, want{503, CodeDegraded, true}},
		{supervise.DegradedDisk, RejectDegraded, want{507, CodeDiskFull, true}, want{507, CodeDiskFull, true}},
		{supervise.DegradedDisk, ServeDegraded, want{200, "", false}, want{507, CodeDiskFull, true}},
		{supervise.Recovering, RejectDegraded, want{503, CodeRecovering, true}, want{503, CodeRecovering, true}},
		{supervise.Recovering, ServeDegraded, want{200, "", false}, want{503, CodeRecovering, true}},
		{supervise.Failed, RejectDegraded, want{503, CodeFailed, false}, want{503, CodeFailed, false}},
		{supervise.Failed, ServeDegraded, want{200, "", false}, want{503, CodeFailed, false}},
	}
	for _, tc := range cases {
		b := newFakeBackend(t)
		srv, err := New(Config{Backend: b, DefaultModels: []string{"m"}, DegradedReads: tc.policy})
		if err != nil {
			t.Fatal(err)
		}
		b.setState(tc.state)
		for _, ep := range healthEndpoints {
			w := tc.read
			if ep.write {
				w = tc.write
			}
			rr := do(t, srv.Handler(), ep.method, ep.target, ep.body, nil)
			label := tc.state.String() + "/" + tc.policy.String() + "/" + ep.name
			if rr.Code != w.status {
				t.Errorf("%s: status = %d, want %d (body %s)", label, rr.Code, w.status, rr.Body.String())
				continue
			}
			if w.code != "" && errCode(t, rr) != w.code {
				t.Errorf("%s: code = %q, want %q", label, errCode(t, rr), w.code)
			}
			if got := rr.Header().Get("Retry-After") != ""; got != w.retryAfter {
				t.Errorf("%s: Retry-After present = %v, want %v", label, got, w.retryAfter)
			}
		}
	}
}

// TestHealthzReflectsState pins the probe endpoint across every state.
func TestHealthzReflectsState(t *testing.T) {
	b := newFakeBackend(t)
	srv, err := New(Config{Backend: b, DefaultModels: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		state  supervise.State
		status int
	}{
		{supervise.Healthy, 200},
		{supervise.Degraded, 503},
		{supervise.DegradedDisk, 503},
		{supervise.Recovering, 503},
		{supervise.Failed, 503},
	} {
		b.setState(tc.state)
		rr := do(t, srv.Handler(), "GET", "/healthz", nil, nil)
		if rr.Code != tc.status {
			t.Errorf("%s: healthz = %d, want %d", tc.state, rr.Code, tc.status)
		}
		var h obs.Health
		if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		if h.State != tc.state.String() {
			t.Errorf("%s: healthz state = %q", tc.state, h.State)
		}
	}
}

// TestMidRequestTransitionRunsToCompletion pins the admission contract:
// the health gate is checked once at admission, so a request in flight
// when the store degrades finishes normally, while the next request is
// rejected.
func TestMidRequestTransitionRunsToCompletion(t *testing.T) {
	b := newFakeBackend(t)
	srv, err := New(Config{Backend: b, DefaultModels: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	h := testEndpointMux(srv, "gated", func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		close(entered)
		select {
		case <-release:
		case <-ctx.Done():
			return ctx.Err()
		}
		// Prove the read surface still works mid-degradation: serve a
		// real query result.
		return srv.handleFind(ctx, w, r)
	})

	type result struct{ rr int }
	done := make(chan result, 1)
	go func() {
		rr := do(t, h, "POST", "/gated?s=%3Chttp%3A%2F%2Fx%23a%3E", nil, nil)
		done <- result{rr.Code}
	}()
	<-entered
	// The store degrades while the request is in flight…
	b.setState(supervise.Degraded)
	// …new arrivals are rejected immediately…
	rr := do(t, h, "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 503)
	if errCode(t, rr) != CodeDegraded {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeDegraded)
	}
	// …but the admitted request completes successfully.
	close(release)
	if r := <-done; r.rr != 200 {
		t.Fatalf("in-flight request = %d after mid-flight degradation, want 200", r.rr)
	}
}

// faultBackend reports Healthy but fails every mutation with a fixed
// error, modelling the window where a write hits a disk fault before
// the supervisor has transitioned to Degraded(disk).
type faultBackend struct {
	*fakeBackend
	err error
}

func (b *faultBackend) Mutate(func(*core.Store) error) error { return b.err }

// TestInFlightDiskFaultMapsToTyped pins the other half of the disk
// contract: not just the gate (TestHealthStateMapping) but an in-flight
// mutation that fails at the WAL itself. The client must see a typed,
// retryable rejection — never a 500 and never raw syscall text like
// "no space left on device".
func TestInFlightDiskFaultMapsToTyped(t *testing.T) {
	insert := map[string]any{
		"model":   "m",
		"triples": []map[string]string{{"s": "<http://x#h>", "p": "<http://x#p>", "o": "<http://x#h2>"}},
	}
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"budget rejection", fmt.Errorf("%w: append: %w", core.ErrDurability, wal.ErrNoSpace), 507, CodeDiskFull},
		{"real enospc", fmt.Errorf("%w: append: write: %w", core.ErrDurability, syscall.ENOSPC), 507, CodeDiskFull},
		{"short write", fmt.Errorf("%w: append: %w", core.ErrDurability, io.ErrShortWrite), 507, CodeDiskFull},
		{"other wal failure", fmt.Errorf("%w: sync: device error", core.ErrDurability), 503, CodeDegraded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := &faultBackend{fakeBackend: newFakeBackend(t), err: tc.err}
			srv, err := New(Config{Backend: b, DefaultModels: []string{"m"}})
			if err != nil {
				t.Fatal(err)
			}
			rr := do(t, srv.Handler(), "POST", "/insert", insert, nil)
			if rr.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rr.Code, tc.status, rr.Body.String())
			}
			if got := errCode(t, rr); got != tc.code {
				t.Fatalf("code = %q, want %q", got, tc.code)
			}
			if rr.Header().Get("Retry-After") == "" {
				t.Fatalf("missing Retry-After on %d response", rr.Code)
			}
			if body := rr.Body.String(); strings.Contains(body, "no space left on device") {
				t.Fatalf("raw ENOSPC text leaked to client: %s", body)
			}
		})
	}
}

package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/reify"
	"repro/internal/wal"
)

func writeData(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.nt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const icData = `
<http://www.us.gov#files> <http://www.us.gov#terrorSuspect> <http://www.us.id#JohnDoe> .
<http://www.us.id#JimDoe> <http://www.us.gov#terrorAction> "bombing" .
`

func TestQueryBasic(t *testing.T) {
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-query", "(?s ?p ?o)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 rows") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestQueryWithAliasAndFilter(t *testing.T) {
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-alias", "gov=http://www.us.gov#",
		"-query", "(?s gov:terrorSuspect ?o)",
		"-filter", `LIKE(?o, "%JohnDoe")`,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1 rows") || !strings.Contains(got, "JohnDoe") {
		t.Errorf("output:\n%s", got)
	}
}

func TestQueryWithRule(t *testing.T) {
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-alias", "gov=http://www.us.gov#",
		"-query", "(gov:files gov:terrorSuspect ?x)",
		"-rule", `(?x gov:terrorAction "bombing") => (gov:files gov:terrorSuspect ?x)`,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "JimDoe") { // inferred
		t.Errorf("inferred suspect missing:\n%s", got)
	}
	if !strings.Contains(got, "2 rows") {
		t.Errorf("output:\n%s", got)
	}
}

func TestQueryWithRDFS(t *testing.T) {
	path := writeData(t, `
<http://x#Dog> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x#Animal> .
<http://x#rex> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x#Dog> .
`)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-rdfs",
		"-query", "(?x rdf:type <http://x#Animal>)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rex") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestQueryErrors(t *testing.T) {
	path := writeData(t, icData)
	cases := [][]string{
		{"-data", path},                  // missing -query
		{"-data", path, "-query", "bad"}, // bad query
		{"-data", path, "-query", "(?s ?p ?o)", "-alias", "noequals"},
		{"-data", path, "-query", "(?s ?p ?o)", "-rule", "no arrow"},
		{"-data", "/nonexistent.nt", "-query", "(?s ?p ?o)"},
	}
	for i, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQuerySnapshot(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "d.nt")
	if err := os.WriteFile(dataPath, []byte(icData), 0o600); err != nil {
		t.Fatal(err)
	}
	// Build a snapshot through the core API (what rdfload -save does).
	snapPath := filepath.Join(dir, "s.snap")
	buildSnapshot(t, dataPath, snapPath)

	var out strings.Builder
	err := run([]string{
		"-snapshot", snapPath,
		"-model", "data",
		"-query", "(?s ?p ?o)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 rows") {
		t.Errorf("output:\n%s", out.String())
	}
	// Missing snapshot errors.
	if err := run([]string{"-snapshot", "/nonexistent.snap", "-query", "(?s ?p ?o)"}, &strings.Builder{}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func buildSnapshot(t *testing.T, dataPath, snapPath string) {
	t.Helper()
	st := core.New()
	if _, err := st.CreateRDFModel("data", "", ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loader := &reify.Loader{Store: st, Model: "data"}
	if _, err := loader.Load(f); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if err := st.Save(sf); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFlag(t *testing.T) {
	path := writeData(t, icData)
	var out strings.Builder
	if err := run([]string{"-data", path, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "triples (rdf_link$ rows): 2") {
		t.Errorf("output:\n%s", got)
	}
	if !strings.Contains(got, "CONTEXT=D (direct):       2") {
		t.Errorf("output:\n%s", got)
	}
}

// loadWithWAL runs rdfload's pipeline by hand: a store writing through a
// WAL at path, loaded with the given N-Triples, optionally snapshotted.
func loadWithWAL(t *testing.T, walPath, snapPath, nt string) {
	t.Helper()
	log, _, err := wal.OpenFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	st := core.New()
	st.SetDurability(log)
	if _, err := st.CreateRDFModel("data", "", ""); err != nil {
		t.Fatal(err)
	}
	loader := &reify.Loader{Store: st, Model: "data"}
	if _, err := loader.Load(strings.NewReader(nt)); err != nil {
		t.Fatal(err)
	}
	if snapPath != "" {
		f, err := os.Create(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := st.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := log.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryFromWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	loadWithWAL(t, walPath, "", icData)

	var out strings.Builder
	err := run([]string{
		"-wal", walPath,
		"-query", "(?s ?p ?o)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "recovered from WAL") || !strings.Contains(got, "2 rows") {
		t.Errorf("output:\n%s", got)
	}
}

func TestQueryFromSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	snapPath := filepath.Join(dir, "store.snap")
	// Checkpoint the first triple into the snapshot, leave the second in
	// the log only.
	loadWithWAL(t, walPath, snapPath,
		"<http://www.us.gov#files> <http://www.us.gov#terrorSuspect> <http://www.us.id#JohnDoe> .\n")
	log, _, err := wal.OpenFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Load(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	st.SetDurability(log)
	loader := &reify.Loader{Store: st, Model: "data"}
	if _, err := loader.Load(strings.NewReader(
		`<http://www.us.id#JimDoe> <http://www.us.gov#terrorAction> "bombing" .` + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = run([]string{
		"-snapshot", snapPath,
		"-wal", walPath,
		"-query", "(?s ?p ?o)",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "recovered from snapshot") || !strings.Contains(got, "2 rows") {
		t.Errorf("output:\n%s", got)
	}
}

func TestQueryTornWALRecovers(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	loadWithWAL(t, walPath, "", icData)
	// Tear the tail: chop bytes off the last record.
	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, img[:len(img)-3], 0o600); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	stderr := captureStderr(t)
	err = run([]string{
		"-wal", walPath,
		"-query", "(?s ?p ?o)",
	}, &out)
	warnings := stderr()
	if err != nil {
		t.Fatal(err)
	}
	// The torn-tail repair is an operational warning: it must land on
	// stderr (one line), not pollute the query output on stdout.
	if !strings.Contains(warnings, "torn tail") {
		t.Errorf("torn tail warning not on stderr:\n%s", warnings)
	}
	if strings.Contains(out.String(), "torn tail") {
		t.Errorf("torn tail warning leaked to stdout:\n%s", out.String())
	}
}

// captureStderr swaps os.Stderr for a pipe; the returned func restores
// it and yields everything written in between.
func captureStderr(t *testing.T) func() string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	return func() string {
		w.Close()
		os.Stderr = old
		return <-done
	}
}

func TestQuerySnapshotErrorMessages(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("junk that is not a snapshot"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-snapshot", bad, "-query", "(?s ?p ?o)"}, &out)
	if err == nil || !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("corrupt snapshot error = %v, want 'damaged' message", err)
	}

	notWAL := filepath.Join(dir, "bogus.wal")
	if err := os.WriteFile(notWAL, []byte("junk that is not a log 12345"), 0o600); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-wal", notWAL, "-query", "(?s ?p ?o)"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not a WAL") {
		t.Fatalf("non-WAL error = %v, want 'not a WAL' message", err)
	}
}

func TestQueryTimeoutFlag(t *testing.T) {
	// A generous timeout lets the query finish normally.
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-query", "(?s ?p ?o)",
		"-timeout", "30s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 rows") {
		t.Errorf("output:\n%s", out.String())
	}

	// A sub-microsecond budget trips before the join can run, with the
	// dedicated message and exit code 2 — scripts can tell a deadline
	// kill (tune the query) from a Ctrl-C (exit 130).
	out.Reset()
	err = run([]string{
		"-data", path,
		"-query", "(?a ?p ?b) (?b ?q ?c)",
		"-timeout", "1ns",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "timed out after") {
		t.Fatalf("1ns timeout error = %v, want 'timed out after' message", err)
	}
	var xe *exitError
	if !errors.As(err, &xe) || xe.code != exitTimeout {
		t.Fatalf("timeout error = %#v, want exitError with code %d", err, exitTimeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error does not unwrap to DeadlineExceeded: %v", err)
	}
}

func TestQueryExplain(t *testing.T) {
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-alias", "gov=http://www.us.gov#",
		"-query", "(?s gov:terrorSuspect ?o) (?s ?p ?o)",
		"-explain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"explain:", "plan: ", "stage 1: #", "candidates=", "total "} {
		if !strings.Contains(got, want) {
			t.Errorf("explain output missing %q:\n%s", want, got)
		}
	}
}

func TestQuerySlowThreshold(t *testing.T) {
	// Any real query exceeds a 1ns threshold; the slow-query trace goes
	// to stderr, so here we assert the query itself is unaffected.
	path := writeData(t, icData)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-query", "(?s ?p ?o)",
		"-slow", "1ns",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 rows") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestQueryAdminBadAddr(t *testing.T) {
	path := writeData(t, icData)
	err := run([]string{
		"-data", path,
		"-query", "(?s ?p ?o)",
		"-admin", "definitely-not-an-address:xyz",
	}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Fatalf("bad -admin addr error = %v", err)
	}
}

// TestQueryWALDirRecovers reads a store back from a segmented WAL
// directory, including the torn-tail repair warning on stderr.
func TestQueryWALDirRecovers(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal.d")
	d, _, err := wal.OpenDir(walDir, 0, wal.DirOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	st := core.New()
	st.SetDurability(d)
	if _, err := st.CreateRDFModel("data", "", ""); err != nil {
		t.Fatal(err)
	}
	loader := &reify.Loader{Store: st, Model: "data"}
	if _, err := loader.Load(strings.NewReader(icData)); err != nil {
		t.Fatal(err)
	}
	if d.Segments() < 2 {
		t.Fatalf("load spans only %d segment(s); shrink SegmentBytes", d.Segments())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean read via -wal-dir.
	var out strings.Builder
	if err := run([]string{"-wal-dir", walDir, "-query", "(?s ?p ?o)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recovered from WAL directory") {
		t.Errorf("recovery banner missing:\n%s", out.String())
	}

	// Tear the final segment's tail: one stderr warning, query still runs.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v (err %v)", segs, err)
	}
	last := segs[len(segs)-1]
	img, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, img[:len(img)-3], 0o600); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	stderr := captureStderr(t)
	err = run([]string{"-wal-dir", walDir, "-query", "(?s ?p ?o)"}, &out)
	warnings := stderr()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warnings, "torn tail") {
		t.Errorf("torn tail warning not on stderr:\n%s", warnings)
	}
}

package match

import (
	"testing"

	"repro/internal/core"
)

func TestMatchDistinct(t *testing.T) {
	s := icStore(t)
	// Without DISTINCT: JohnDoe appears 3× (once per model).
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:  []string{"cia", "dhs", "fbi"},
		Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 {
		t.Fatalf("plain rows = %d", rs.Len())
	}
	rs, err = Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:   []string{"cia", "dhs", "fbi"},
		Aliases:  govAliases(),
		Distinct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 { // JohnDoe, JaneDoe
		t.Fatalf("distinct rows = %d", rs.Len())
	}
}

func TestMatchOrderBy(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:   []string{"cia", "dhs", "fbi"},
		Aliases:  govAliases(),
		Distinct: true,
		OrderBy:  []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	first, _ := rs.Get(0, "name")
	second, _ := rs.Get(1, "name")
	if first.Value >= second.Value {
		t.Fatalf("not ordered: %q then %q", first.Value, second.Value)
	}
}

func TestMatchOrderByMultipleVars(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(?s ?p ?o)`, Options{
		Models:  []string{"cia", "dhs", "fbi"},
		OrderBy: []string{"s", "p", "o"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < rs.Len(); i++ {
		prev, cur := rs.Rows[i-1], rs.Rows[i]
		cmp := 0
		for c := 0; c < 3 && cmp == 0; c++ {
			cmp = prev[c].Compare(cur[c])
		}
		if cmp > 0 {
			t.Fatalf("row %d out of order", i)
		}
	}
}

func TestMatchOrderByUnknownVar(t *testing.T) {
	s := icStore(t)
	if _, err := Match(s, `(?s ?p ?o)`, Options{
		Models:  []string{"cia"},
		OrderBy: []string{"ghost"},
	}); err == nil {
		t.Fatal("unknown ORDER BY variable accepted")
	}
}

func TestMatchDistinctWithFilter(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:   []string{"cia", "dhs", "fbi"},
		Aliases:  govAliases(),
		Distinct: true,
		Filter:   `LIKE(?name, "%JohnDoe")`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
}

// TestMatchJoinThroughBlankNodes: a variable bound to a blank node (its
// internal label) must work as a constraint in later patterns — the
// container pattern of §2 (members hang off a generated blank node).
func TestMatchJoinThroughBlankNodes(t *testing.T) {
	s := core.New()
	s.CreateRDFModel("m", "", "")
	a := govAliases()
	// _:bag rdf:type rdf:Bag ; rdf:_1 gov:member1 ; rdf:_2 gov:member2.
	s.NewTripleS("m", "_:bag", "rdf:type", "rdf:Bag", a)
	s.NewTripleS("m", "_:bag", "rdf:_1", "gov:member1", a)
	s.NewTripleS("m", "_:bag", "rdf:_2", "gov:member2", a)
	s.NewTripleS("m", "gov:notbag", "rdf:_1", "gov:other", a)

	rs, err := Match(s, `(?c rdf:type rdf:Bag) (?c rdf:_1 ?first)`, Options{
		Models: []string{"m"}, Aliases: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d, want 1", rs.Len())
	}
	first, _ := rs.Get(0, "first")
	if first.Value != "http://www.us.gov#member1" {
		t.Fatalf("?first = %v", first)
	}
}

package reldb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func personSchema() *Schema {
	return NewSchema("people",
		Column{Name: "ID", Kind: KindInt},
		Column{Name: "NAME", Kind: KindString},
		Column{Name: "AGE", Kind: KindInt, Nullable: true},
	)
}

func TestSchemaValidate(t *testing.T) {
	s := personSchema()
	if err := s.Validate(Row{Int(1), String_("a"), Int(30)}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{Int(1), String_("a"), Null()}); err != nil {
		t.Fatalf("nullable NULL rejected: %v", err)
	}
	if err := s.Validate(Row{Int(1), String_("a")}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("wrong arity accepted: %v", err)
	}
	if err := s.Validate(Row{Null(), String_("a"), Null()}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("NULL in NOT NULL column accepted: %v", err)
	}
	if err := s.Validate(Row{String_("1"), String_("a"), Null()}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("wrong kind accepted: %v", err)
	}
}

func TestSchemaColumnLookup(t *testing.T) {
	s := personSchema()
	if s.ColumnIndex("name") != 1 || s.ColumnIndex("NAME") != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Fatal("missing column found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustColumnIndex on missing column did not panic")
		}
	}()
	s.MustColumnIndex("missing")
}

func TestInsertGetUpdateDelete(t *testing.T) {
	tb := NewTable(personSchema())
	id, err := tb.Insert(Row{Int(1), String_("ann"), Int(33)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tb.Get(id)
	if err != nil || r[1].Str() != "ann" {
		t.Fatalf("Get = %v, %v", r, err)
	}
	if err := tb.UpdateColumn(id, "AGE", Int(34)); err != nil {
		t.Fatal(err)
	}
	r, _ = tb.Get(id)
	if r[2].Int64() != 34 {
		t.Fatalf("AGE = %v after update", r[2])
	}
	if err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Get(id); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("Get after delete: %v", err)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Row IDs are not reused.
	id2, _ := tb.Insert(Row{Int(2), String_("bob"), Null()})
	if id2 == id {
		t.Fatal("row ID reused after delete")
	}
}

func TestInsertRejectsBadRows(t *testing.T) {
	tb := NewTable(personSchema())
	if _, err := tb.Insert(Row{Int(1)}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("bad arity: %v", err)
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tb := NewTable(personSchema())
	r := Row{Int(1), String_("ann"), Int(33)}
	id, _ := tb.Insert(r)
	r[1] = String_("mutated")
	got, _ := tb.Get(id)
	if got[1].Str() != "ann" {
		t.Fatal("Insert did not copy the row")
	}
}

func TestUniqueIndex(t *testing.T) {
	tb := NewTable(personSchema())
	if _, err := tb.CreateIndex("pk", true, "ID"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(Row{Int(1), String_("ann"), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(Row{Int(1), String_("bob"), Null()}); !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("duplicate key accepted: %v", err)
	}
	// NULL keys do not participate in uniqueness.
	tb2 := NewTable(personSchema())
	if _, err := tb2.CreateIndex("uage", true, "AGE"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Insert(Row{Int(1), String_("a"), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Insert(Row{Int(2), String_("b"), Null()}); err != nil {
		t.Fatalf("second NULL key rejected: %v", err)
	}
}

func TestUniqueIndexUpdateSelf(t *testing.T) {
	tb := NewTable(personSchema())
	tb.CreateIndex("pk", true, "ID")
	id, _ := tb.Insert(Row{Int(1), String_("ann"), Null()})
	// Updating a row to its own key must not trip the unique check.
	if err := tb.Update(id, Row{Int(1), String_("anne"), Null()}); err != nil {
		t.Fatalf("self-key update rejected: %v", err)
	}
	id2, _ := tb.Insert(Row{Int(2), String_("bob"), Null()})
	if err := tb.Update(id2, Row{Int(1), String_("bob"), Null()}); !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("conflicting update accepted: %v", err)
	}
}

func TestCreateIndexOverExistingData(t *testing.T) {
	tb := NewTable(personSchema())
	for i := int64(0); i < 100; i++ {
		tb.Insert(Row{Int(i), String_(fmt.Sprintf("p%d", i%10)), Int(i % 5)})
	}
	ix, err := tb.CreateIndex("byname", false, "NAME")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(Key{String_("p3")})); got != 10 {
		t.Fatalf("Lookup(p3) = %d rows, want 10", got)
	}
	// Unique build over duplicate data must fail.
	if _, err := tb.CreateIndex("uname", true, "NAME"); !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("unique build over dups: %v", err)
	}
}

func TestIndexMaintainedOnUpdateDelete(t *testing.T) {
	tb := NewTable(personSchema())
	ix, _ := tb.CreateIndex("byname", false, "NAME")
	id, _ := tb.Insert(Row{Int(1), String_("ann"), Null()})
	tb.Update(id, Row{Int(1), String_("anne"), Null()})
	if len(ix.Lookup(Key{String_("ann")})) != 0 {
		t.Fatal("stale index entry after update")
	}
	if len(ix.Lookup(Key{String_("anne")})) != 1 {
		t.Fatal("missing index entry after update")
	}
	tb.Delete(id)
	if len(ix.Lookup(Key{String_("anne")})) != 0 {
		t.Fatal("stale index entry after delete")
	}
	if ix.Len() != 0 {
		t.Fatalf("index Len = %d after delete", ix.Len())
	}
}

func TestFunctionIndex(t *testing.T) {
	tb := NewTable(personSchema())
	// Index on "first letter of name" — the shape of §7.2's
	// function-based indexes on GET_SUBJECT().
	ix, err := tb.CreateFunctionIndex("byinitial", false, func(r Row) Key {
		return Key{String_(r[1].Str()[:1])}
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Insert(Row{Int(1), String_("ann"), Null()})
	tb.Insert(Row{Int(2), String_("amy"), Null()})
	tb.Insert(Row{Int(3), String_("bob"), Null()})
	if got := len(ix.Lookup(Key{String_("a")})); got != 2 {
		t.Fatalf("Lookup(a) = %d, want 2", got)
	}
}

func TestIndexScanPrefix(t *testing.T) {
	tb := NewTable(personSchema())
	ix, _ := tb.CreateIndex("byid_name", false, "ID", "NAME")
	for i := int64(0); i < 10; i++ {
		tb.Insert(Row{Int(i % 3), String_(fmt.Sprintf("n%d", i)), Null()})
	}
	n := 0
	ix.ScanPrefix(Key{Int(1)}, func(k Key, _ RowID) bool {
		if k[0].Int64() != 1 {
			t.Fatalf("prefix scan leaked key %v", k)
		}
		n++
		return true
	})
	if n != 3 { // ids 1,4,7
		t.Fatalf("prefix scan count = %d, want 3", n)
	}
}

func TestIndexScanRangeAndEarlyStop(t *testing.T) {
	tb := NewTable(personSchema())
	ix, _ := tb.CreateIndex("byid", false, "ID")
	for i := int64(0); i < 100; i++ {
		tb.Insert(Row{Int(i), String_("x"), Null()})
	}
	var keys []int64
	ix.Scan(Key{Int(10)}, Key{Int(15)}, func(k Key, _ RowID) bool {
		keys = append(keys, k[0].Int64())
		return true
	})
	if len(keys) != 6 || keys[0] != 10 || keys[5] != 15 {
		t.Fatalf("range scan = %v", keys)
	}
	n := 0
	ix.Scan(nil, nil, func(Key, RowID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDropIndex(t *testing.T) {
	tb := NewTable(personSchema())
	tb.CreateIndex("byname", false, "NAME")
	if err := tb.DropIndex("byname"); err != nil {
		t.Fatal(err)
	}
	if err := tb.DropIndex("byname"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := tb.Index("byname"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("Index after drop: %v", err)
	}
	// Mutations after drop must not touch the dropped index.
	if _, err := tb.Insert(Row{Int(1), String_("a"), Null()}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedTable(t *testing.T) {
	s := NewSchema("links",
		Column{Name: "MODEL_ID", Kind: KindInt},
		Column{Name: "VAL", Kind: KindString},
	)
	tb := NewPartitionedTable(s, "MODEL_ID")
	for i := int64(0); i < 30; i++ {
		tb.Insert(Row{Int(i % 3), String_(fmt.Sprintf("v%d", i))})
	}
	if got := tb.PartitionLen(1); got != 10 {
		t.Fatalf("PartitionLen(1) = %d, want 10", got)
	}
	parts := tb.Partitions()
	if len(parts) != 3 || parts[0] != 0 || parts[2] != 2 {
		t.Fatalf("Partitions = %v", parts)
	}
	n := 0
	tb.ScanPartition(2, func(_ RowID, r Row) bool {
		if r[0].Int64() != 2 {
			t.Fatalf("partition scan leaked row %v", r)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("partition scan count = %d", n)
	}
	removed, err := tb.TruncatePartition(0)
	if err != nil || removed != 10 {
		t.Fatalf("TruncatePartition = %d, %v", removed, err)
	}
	if tb.Len() != 20 {
		t.Fatalf("Len after truncate = %d", tb.Len())
	}
	if got := len(tb.Partitions()); got != 2 {
		t.Fatalf("Partitions after truncate = %d", got)
	}
}

func TestPartitionOpsOnUnpartitioned(t *testing.T) {
	tb := NewTable(personSchema())
	if err := tb.ScanPartition(1, func(RowID, Row) bool { return true }); !errors.Is(err, ErrNoSuchPartition) {
		t.Fatalf("ScanPartition on plain table: %v", err)
	}
	if _, err := tb.TruncatePartition(1); !errors.Is(err, ErrNoSuchPartition) {
		t.Fatalf("TruncatePartition on plain table: %v", err)
	}
	if tb.Partitions() != nil {
		t.Fatal("Partitions on plain table not nil")
	}
}

func TestDatabaseObjects(t *testing.T) {
	db := NewDatabase("MDSYS")
	tb, err := db.CreateTable(personSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(personSchema()); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("duplicate table: %v", err)
	}
	if got := db.MustTable("people"); got != tb {
		t.Fatal("MustTable returned wrong table")
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	seq, err := db.CreateSequence("s1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Next() != 100 || seq.Next() != 101 || seq.Current() != 102 {
		t.Fatal("sequence values wrong")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "people" {
		t.Fatalf("TableNames = %v", names)
	}
	if err := db.DropTable("people"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("people"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestView(t *testing.T) {
	db := NewDatabase("test")
	tb, _ := db.CreateTable(personSchema())
	for i := int64(0); i < 10; i++ {
		tb.Insert(Row{Int(i), String_(fmt.Sprintf("p%d", i)), Int(20 + i)})
	}
	v, err := db.CreateView("adults", tb, func(r Row) bool { return r[2].Int64() >= 25 }, "NAME", "AGE")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 {
		t.Fatalf("view Len = %d, want 5", v.Len())
	}
	v.Scan(func(_ RowID, r Row) bool {
		if len(r) != 2 {
			t.Fatalf("projection arity = %d", len(r))
		}
		if r[1].Int64() < 25 {
			t.Fatalf("predicate leaked row %v", r)
		}
		return true
	})
	// Views are live: new rows show up.
	tb.Insert(Row{Int(100), String_("new"), Int(99)})
	if v.Len() != 6 {
		t.Fatalf("view not live: Len = %d", v.Len())
	}
	// Dropping the base table drops dependent views.
	db.DropTable("people")
	if _, err := db.View("adults"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("view survived base drop: %v", err)
	}
}

// Property test: a table with a non-unique index stays consistent with a
// map-based model under random insert/update/delete sequences.
func TestQuickTableIndexConsistency(t *testing.T) {
	type op struct {
		kind int
		id   int64
		name string
	}
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(personSchema())
		ix, _ := tb.CreateIndex("byname", false, "NAME")
		model := map[RowID]string{} // rowid -> name
		var ids []RowID
		for i := 0; i < int(nops)+20; i++ {
			switch rng.Intn(3) {
			case 0: // insert
				name := fmt.Sprintf("n%d", rng.Intn(8))
				id, err := tb.Insert(Row{Int(int64(i)), String_(name), Null()})
				if err != nil {
					return false
				}
				model[id] = name
				ids = append(ids, id)
			case 1: // update random live row
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if _, live := model[id]; !live {
					continue
				}
				name := fmt.Sprintf("n%d", rng.Intn(8))
				if err := tb.Update(id, Row{Int(id), String_(name), Null()}); err != nil {
					return false
				}
				model[id] = name
			case 2: // delete random live row
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if _, live := model[id]; !live {
					continue
				}
				if err := tb.Delete(id); err != nil {
					return false
				}
				delete(model, id)
			}
		}
		if tb.Len() != len(model) {
			return false
		}
		// Every model entry must be findable via the index, and index
		// cardinality must match.
		if ix.Len() != len(model) {
			return false
		}
		for id, name := range model {
			found := false
			for _, got := range ix.Lookup(Key{String_(name)}) {
				if got == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package reldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Sequence generates unique ascending int64 IDs, like an Oracle sequence.
// The paper's VALUE_ID, LINK_ID, and MODEL_ID generators are sequences.
type Sequence struct {
	next atomic.Int64
}

// NewSequence returns a sequence whose first value is start.
func NewSequence(start int64) *Sequence {
	s := &Sequence{}
	s.next.Store(start)
	return s
}

// Next returns the next value.
func (s *Sequence) Next() int64 { return s.next.Add(1) - 1 }

// Current returns the value Next would return, without consuming it.
func (s *Sequence) Current() int64 { return s.next.Load() }

// AdvanceTo moves the sequence forward so Current() >= v; it never moves
// the sequence backwards. Used when restoring snapshots.
func (s *Sequence) AdvanceTo(v int64) {
	for {
		cur := s.next.Load()
		if cur >= v {
			return
		}
		if s.next.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Database is a named collection of tables, sequences, and views — one
// "schema" in Oracle terms. The RDF central schema (MDSYS in the paper) is
// a Database; user application schemas can be separate Databases or share
// one.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
	seqs   map[string]*Sequence
	views  map[string]*View
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		name:   name,
		tables: make(map[string]*Table),
		seqs:   make(map[string]*Sequence),
		views:  make(map[string]*View),
	}
}

// Name returns the database (schema) name.
func (d *Database) Name() string { return d.name }

// CreateTable registers a new unpartitioned table.
func (d *Database) CreateTable(schema *Schema) (*Table, error) {
	return d.addTable(NewTable(schema))
}

// CreatePartitionedTable registers a new list-partitioned table.
func (d *Database) CreatePartitionedTable(schema *Schema, partColumn string) (*Table, error) {
	return d.addTable(NewPartitionedTable(schema, partColumn))
}

func (d *Database) addTable(t *Table) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[t.Name()]; dup {
		return nil, fmt.Errorf("%w: table %s.%s", ErrDuplicateObject, d.name, t.Name())
	}
	d.tables[t.Name()] = t
	return t, nil
}

// Table returns a table by name.
func (d *Database) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchTable, d.name, name)
	}
	return t, nil
}

// MustTable is Table but panics on unknown names.
func (d *Database) MustTable(name string) *Table {
	t, err := d.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// DropTable removes a table and its dependent views.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchTable, d.name, name)
	}
	delete(d.tables, name)
	for vname, v := range d.views {
		if v.base.Name() == name {
			delete(d.views, vname)
		}
	}
	return nil
}

// TableNames returns the names of all tables, sorted.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateSequence registers a new sequence starting at start.
func (d *Database) CreateSequence(name string, start int64) (*Sequence, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seqs[name]; dup {
		return nil, fmt.Errorf("%w: sequence %s.%s", ErrDuplicateObject, d.name, name)
	}
	s := NewSequence(start)
	d.seqs[name] = s
	return s, nil
}

// Sequence returns a sequence by name.
func (d *Database) Sequence(name string) (*Sequence, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.seqs[name]
	if !ok {
		return nil, fmt.Errorf("%w: sequence %s.%s", ErrNoSuchTable, d.name, name)
	}
	return s, nil
}

// View is a read-only filtered projection of a base table. Model views
// (rdfm_<model>, §4.3) are Views whose predicate selects one MODEL_ID
// partition.
type View struct {
	name    string
	base    *Table
	pred    func(Row) bool
	columns []int // projection; nil = all columns
}

// CreateView registers a view over base selecting rows where pred is true,
// projecting the named columns (all columns when none given).
func (d *Database) CreateView(name string, base *Table, pred func(Row) bool, columns ...string) (*View, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.views[name]; dup {
		return nil, fmt.Errorf("%w: view %s.%s", ErrDuplicateObject, d.name, name)
	}
	var proj []int
	for _, c := range columns {
		proj = append(proj, base.Schema().MustColumnIndex(c))
	}
	v := &View{name: name, base: base, pred: pred, columns: proj}
	d.views[name] = v
	return v, nil
}

// View returns a view by name.
func (d *Database) View(name string) (*View, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: view %s.%s", ErrNoSuchTable, d.name, name)
	}
	return v, nil
}

// DropView removes a view.
func (d *Database) DropView(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.views[name]; !ok {
		return fmt.Errorf("%w: view %s.%s", ErrNoSuchTable, d.name, name)
	}
	delete(d.views, name)
	return nil
}

// Name returns the view name.
func (v *View) Name() string { return v.name }

// Scan visits the view's rows (projected if the view has a column list).
func (v *View) Scan(fn func(id RowID, r Row) bool) {
	v.base.Scan(func(id RowID, r Row) bool {
		if v.pred != nil && !v.pred(r) {
			return true
		}
		if v.columns == nil {
			return fn(id, r)
		}
		out := make(Row, len(v.columns))
		for i, c := range v.columns {
			out[i] = r[c]
		}
		return fn(id, out)
	})
}

// Len counts the view's rows.
func (v *View) Len() int {
	n := 0
	v.Scan(func(RowID, Row) bool { n++; return true })
	return n
}

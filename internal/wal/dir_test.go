package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// dirRec builds a small distinguishable record for segment tests.
func dirRec(i int) Record {
	return Record{Type: TypeDeleteLink, LinkID: int64(i)}
}

// openTestDir opens a Dir with a tiny rotation threshold so a handful of
// appends spans several segments.
func openTestDir(t *testing.T, dir string, fromSeq int64, opts DirOptions) (*Dir, DirScanResult) {
	t.Helper()
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 64
	}
	d, res, err := OpenDir(dir, fromSeq, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// appendN appends and commits n records starting at id.
func appendN(t *testing.T, d *Dir, id, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := d.Append(dirRec(id + i)); err != nil {
			t.Fatalf("append %d: %v", id+i, err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDirFreshCreatesFirstSegment(t *testing.T) {
	dir := t.TempDir()
	d, res := openTestDir(t, dir, 0, DirOptions{})
	defer d.Close()
	if res.Segments != 1 || res.StartSeq != 1 || res.Seq != 1 {
		t.Fatalf("fresh dir: %+v", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000001.log")); err != nil {
		t.Fatalf("first segment missing: %v", err)
	}
	if res.TotalBytes != int64(len(Magic)) {
		t.Errorf("TotalBytes = %d, want header only (%d)", res.TotalBytes, len(Magic))
	}
}

func TestDirRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	if d.Segments() < 3 {
		t.Fatalf("expected rotation across >=3 segments, got %d", d.Segments())
	}
	wantSeg := d.Segments()
	wantSize := d.Size()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, res := openTestDir(t, dir, 0, DirOptions{})
	defer d2.Close()
	if res.Truncated {
		t.Fatalf("clean close reported torn tail: %v", res.TailErr)
	}
	if res.Segments != wantSeg || res.TotalBytes != wantSize {
		t.Fatalf("reopen: segments %d bytes %d, want %d/%d", res.Segments, res.TotalBytes, wantSeg, wantSize)
	}
	if len(res.Records) != 40 {
		t.Fatalf("replayed %d records, want 40", len(res.Records))
	}
	for i, r := range res.Records {
		if !reflect.DeepEqual(r, dirRec(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// The reopened dir appends from the verified end.
	appendN(t, d2, 40, 5)
	if d2.Size() <= wantSize {
		t.Errorf("size did not grow after reopen appends")
	}
}

func TestDirOversizeRecordStillLands(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{SegmentBytes: 32})
	defer d.Close()
	big := Record{Type: TypeInternValue, ValueID: 1, ValueType: "UR",
		Text: string(make([]byte, 4096))}
	if err := d.Append(big); err != nil {
		t.Fatalf("oversize append: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	_, res := openTestDir(t, dir, 0, DirOptions{SegmentBytes: 32})
	if len(res.Records) != 1 || res.Records[0].ValueID != 1 {
		t.Fatalf("oversize record lost: %+v", res.Records)
	}
}

func TestDirTornFinalTailRepaired(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	last := filepath.Join(dir, segmentName(d.Seq()))
	d.Close()

	// Tear the final segment mid-frame.
	img, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, res := openTestDir(t, dir, 0, DirOptions{})
	defer d2.Close()
	if !res.Truncated || res.TailErr == nil {
		t.Fatalf("torn tail not reported: %+v", res)
	}
	if !isPrefix(res.Records, recordsUpTo(40)) {
		t.Fatal("replayed records are not a prefix of what was written")
	}
	// The tail is truncated on disk: appending and reopening is clean.
	appendN(t, d2, 100, 3)
	d2.Close()
	_, res = openTestDir(t, dir, 0, DirOptions{})
	if res.Truncated {
		t.Fatalf("tail repair did not stick: %v", res.TailErr)
	}
}

// recordsUpTo returns dirRec(0..n-1).
func recordsUpTo(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = dirRec(i)
	}
	return out
}

func TestDirTornNonFinalSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	if d.Segments() < 2 {
		t.Fatal("need at least two segments")
	}
	first := filepath.Join(dir, segmentName(1))
	d.Close()

	img, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir, 0, DirOptions{SegmentBytes: 64}); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("torn non-final segment: got %v, want ErrSegmentCorrupt", err)
	}
}

func TestDirMissingSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	if d.Segments() < 3 {
		t.Fatal("need at least three segments")
	}
	d.Close()
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir, 0, DirOptions{SegmentBytes: 64}); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("segment gap: got %v, want ErrSegmentCorrupt", err)
	}
}

func TestDirWatermarkRetention(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)

	// Checkpoint protocol steps 1+3 by hand: rotate, then pretend the
	// snapshot at the new watermark is durable and reopen with it.
	seq, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, d, 40, 3) // post-checkpoint mutations
	d.Close()

	d2, res, err := OpenDir(dir, seq, DirOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if res.Removed == 0 {
		t.Fatal("watermark reopen removed no stale segments")
	}
	if res.StartSeq != seq {
		t.Fatalf("StartSeq = %d, want watermark %d", res.StartSeq, seq)
	}
	// Only the post-watermark records replay.
	if !reflect.DeepEqual(res.Records, []Record{dirRec(40), dirRec(41), dirRec(42)}) {
		t.Fatalf("replayed %+v, want records 40..42", res.Records)
	}
	// Stale segments are gone from disk.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Errorf("segment 1 survived retention: %v", err)
	}
}

func TestDirWatermarkMismatchIsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	if d.Segments() < 3 {
		t.Fatal("need at least three segments")
	}
	d.Close()
	// A snapshot claims watermark 2, but segment 2 is gone while later
	// ones survive: the records between the watermark and the oldest
	// retained segment are lost.
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir, 2, DirOptions{SegmentBytes: 64}); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("watermark ahead of oldest segment: got %v, want ErrSegmentCorrupt", err)
	}
}

func TestDirAllSegmentsBelowWatermarkStartsFresh(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 5)
	d.Close()
	// Everything on disk is below the watermark: the snapshot already
	// contains it all, so retention finishes and a fresh segment starts
	// at the watermark — no corruption, nothing to replay.
	d2, res, err := OpenDir(dir, 5, DirOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if len(res.Records) != 0 || res.Removed == 0 || res.StartSeq != 5 {
		t.Fatalf("fresh-at-watermark open: %+v", res)
	}
}

func TestDirRemoveBelowKeepsCurrent(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	defer d.Close()
	appendN(t, d, 0, 40)
	cur := d.Seq()
	// Asking to remove past the current segment only removes below it.
	n, err := d.RemoveBelow(cur + 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Segments() != 1 || d.Seq() != cur {
		t.Fatalf("after RemoveBelow: %d segments, seq %d (want 1, %d)", d.Segments(), d.Seq(), cur)
	}
	if n == 0 {
		t.Fatal("nothing removed")
	}
}

func TestDirReset(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 40)
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if d.Segments() != 1 {
		t.Fatalf("after Reset: %d segments, want 1", d.Segments())
	}
	if d.Size() != int64(len(Magic)) {
		t.Fatalf("after Reset: size %d, want header only", d.Size())
	}
	appendN(t, d, 100, 2)
	d.Close()
	_, res := openTestDir(t, dir, 0, DirOptions{})
	if len(res.Records) != 2 {
		t.Fatalf("after Reset+append: replayed %d records, want 2", len(res.Records))
	}
}

func TestDirHardBudgetRejects(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{Budget: Budget{HardBytes: 200}})
	defer d.Close()
	var rejected error
	for i := 0; i < 100; i++ {
		if err := d.Append(dirRec(i)); err != nil {
			rejected = err
			break
		}
	}
	if rejected == nil {
		t.Fatal("hard budget never rejected")
	}
	if !errors.Is(rejected, ErrNoSpace) || !IsNoSpace(rejected) {
		t.Fatalf("rejection = %v, want ErrNoSpace", rejected)
	}
	if d.Size() > 200 {
		t.Fatalf("budget breached: %d bytes on disk", d.Size())
	}
	// Freeing space (checkpoint-style) re-admits appends.
	seq, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveBelow(seq); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(dirRec(999)); err != nil {
		t.Fatalf("append after retention: %v", err)
	}
}

func TestDirSoftWatermarkEdgeTriggered(t *testing.T) {
	dir := t.TempDir()
	var fires atomic.Int64
	d, _ := openTestDir(t, dir, 0, DirOptions{
		Budget: Budget{SoftBytes: 150},
		OnSoft: func(total int64) {
			if total < 150 {
				t.Errorf("OnSoft fired at %d bytes, below the watermark", total)
			}
			fires.Add(1)
		},
	})
	defer d.Close()
	appendN(t, d, 0, 30)
	if got := fires.Load(); got != 1 {
		t.Fatalf("OnSoft fired %d times for one crossing, want 1", got)
	}
	// Retention below the mark re-arms the trigger...
	seq, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveBelow(seq); err != nil {
		t.Fatal(err)
	}
	// ...so the next crossing fires again.
	appendN(t, d, 100, 30)
	if got := fires.Load(); got != 2 {
		t.Fatalf("OnSoft fired %d times after re-arm, want 2", got)
	}
}

func TestDirReopenAboveSoftDoesNotRefire(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	appendN(t, d, 0, 30)
	d.Close()

	// Reopening an already-over-watermark dir arms softFired: the next
	// append must not fire (the supervisor checkpoints on its own clock;
	// the edge was crossed long ago).
	var fires atomic.Int64
	d2, _ := openTestDir(t, dir, 0, DirOptions{
		Budget: Budget{SoftBytes: 10},
		OnSoft: func(int64) { fires.Add(1) },
	})
	defer d2.Close()
	appendN(t, d2, 100, 1)
	if got := fires.Load(); got != 0 {
		t.Fatalf("OnSoft re-fired %d times on an already-crossed watermark", got)
	}
}

func TestDirInjectedENOSPCSurfacesAsNoSpace(t *testing.T) {
	dir := t.TempDir()
	var flaky *FlakyFile
	d, _ := openTestDir(t, dir, 0, DirOptions{
		SegmentBytes: 1 << 20, // no rotation: target the data path
		Wrap: func(f File) File {
			flaky = NewFlaky(f)
			return flaky
		},
	})
	defer d.Close()
	appendN(t, d, 0, 3)
	flaky.FailWithENOSPC(1)
	err := d.Append(dirRec(99))
	if err == nil {
		t.Fatal("injected ENOSPC did not surface")
	}
	if !IsNoSpace(err) {
		t.Fatalf("IsNoSpace(%v) = false", err)
	}
	// The fault is transient: the next append succeeds.
	if err := d.Append(dirRec(100)); err != nil {
		t.Fatalf("append after transient ENOSPC: %v", err)
	}
}

func TestDirGroupLogOverSegments(t *testing.T) {
	dir := t.TempDir()
	d, _ := openTestDir(t, dir, 0, DirOptions{})
	g := GroupSink(d, GroupOptions{SyncEvery: 8})
	for i := 0; i < 40; i++ {
		if err := g.Append(dirRec(i)); err != nil {
			t.Fatalf("group append %d: %v", i, err)
		}
		if err := g.Commit(); err != nil {
			t.Fatalf("group commit %d: %v", i, err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Segments() < 2 {
		t.Fatalf("group flushes never rotated: %d segments", d.Segments())
	}
	d.Close()
	_, res := openTestDir(t, dir, 0, DirOptions{})
	if !reflect.DeepEqual(res.Records, recordsUpTo(40)) {
		t.Fatalf("group-written records mismatch: got %d records", len(res.Records))
	}
}

package core

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// Atomic checkpoint persistence. A checkpoint must never leave a
// half-written snapshot shadowing the previous good one: SaveFile stages
// the image in a sibling *.tmp file, fsyncs it, renames it over the
// target (atomic on POSIX filesystems), and fsyncs the directory so the
// rename itself is durable. A crash at any point leaves either the old
// snapshot or the new one — plus, at worst, a stray *.tmp that recovery
// removes.

// tmpSuffix marks an in-progress snapshot write.
const tmpSuffix = ".tmp"

// SaveFile writes a snapshot of the store to path atomically.
func (s *Store) SaveFile(path string) error {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: publishing %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Filesystems that refuse to fsync directories (some network mounts) are
// tolerated: the rename is still atomic, only its durability ordering is
// weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// RemoveStaleSnapshot deletes the *.tmp left behind by a checkpoint that
// crashed before its rename. Call before loading a snapshot; a missing
// tmp is not an error.
func RemoveStaleSnapshot(path string) {
	os.Remove(path + tmpSuffix)
}

// LoadFile rebuilds a store from the snapshot at path, first removing
// any stale in-progress *.tmp sibling. The *.tmp is never loaded — it
// may be truncated mid-write — so a crash during checkpoint can only
// surface the previous good snapshot.
func LoadFile(path string) (*Store, error) {
	RemoveStaleSnapshot(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// RecoverFiles rebuilds a store from an on-disk checkpoint + WAL pair:
// stale snapshot tmp removed, snapshot loaded when present (fresh store
// otherwise), WAL opened (created when absent) with its torn tail
// truncated, and the verified records replayed. The returned log is
// positioned for appending; attach it (or a wal.Group over it) with
// SetDurability to continue mutating durably.
func RecoverFiles(snapPath, walPath string) (*Store, *wal.Log, RecoverInfo, error) {
	return RecoverFilesWith(snapPath, walPath, wal.OpenFile)
}

// RecoverFilesWith is RecoverFiles with an injectable WAL opener (tests
// substitute fault-wrapped files via wal.OpenFileWith).
func RecoverFilesWith(snapPath, walPath string, openWAL func(string) (*wal.Log, wal.ScanResult, error)) (*Store, *wal.Log, RecoverInfo, error) {
	var s *Store
	if snapPath != "" {
		var err error
		s, err = LoadFile(snapPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, RecoverInfo{}, err
		}
	}
	if s == nil {
		s = New()
	}
	log, res, err := openWAL(walPath)
	if err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	if err := s.Replay(res.Records); err != nil {
		log.Close()
		return nil, nil, RecoverInfo{}, err
	}
	return s, log, RecoverInfo{
		Applied:    len(res.Records),
		ValidBytes: res.ValidBytes,
		Truncated:  res.Truncated,
		TailErr:    res.TailErr,
	}, nil
}

// Checkpoint makes the store's current state the new durable baseline:
// the snapshot is written atomically (SaveFile), then the WAL is
// truncated back to its header. Readers proceed throughout (Save holds
// only the read lock); the caller must ensure no mutation commits
// between the snapshot and the truncation — the supervisor does this by
// excluding mutations for the duration, single-threaded CLIs get it for
// free. A crash after the snapshot rename but before the truncation
// leaves a WAL whose records the snapshot already contains; replaying
// them fails loudly on duplicate IDs rather than corrupting silently —
// restart recovery from the snapshot alone in that case.
func Checkpoint(s *Store, snapPath string, log *wal.Log) error {
	t0 := s.met.startTimer()
	if err := s.SaveFile(snapPath); err != nil {
		return err
	}
	if log != nil {
		if err := log.Reset(); err != nil {
			return fmt.Errorf("core: checkpoint: truncating WAL: %w", err)
		}
	}
	s.met.onCheckpoint(t0)
	return nil
}

package server

import (
	"context"
	"errors"
	"sync"
)

// Admission control. The limiter is a weighted semaphore with a bounded
// FIFO wait queue and optional per-tenant caps:
//
//   - Capacity is measured in weight units, not requests: a 3-pattern
//     join costs more than a single-pattern /find, so endpoints acquire
//     different weights and a flood of heavy queries saturates admission
//     earlier than a flood of cheap ones.
//   - A request that cannot be admitted immediately waits in a bounded
//     FIFO queue. A full queue rejects instantly (ErrQueueFull → 429),
//     and a waiter whose context expires before a slot frees is removed
//     and rejected (ErrWaitTimeout → 429). Nothing ever blocks without a
//     bound — "reject fast" beats "hang" for every client.
//   - With a tenant cap, no single tenant (X-Tenant header) can hold
//     more than its share of the capacity; a tenant at its cap is
//     rejected (ErrTenantLimit → 429) even while global capacity
//     remains, so one noisy tenant cannot starve the rest. Grants skip
//     ahead past tenant-blocked waiters (FIFO within what is grantable).
type Limiter struct {
	mu        sync.Mutex
	capacity  int64
	maxQueue  int
	tenantCap int64

	inUse    int64            // granted weight
	byTenant map[string]int64 // granted weight per tenant
	queue    []*waiter        // FIFO; nil entries are cancelled waiters
}

// Typed admission rejections. All map to HTTP 429; the code in the JSON
// error body distinguishes them.
var (
	ErrQueueFull   = errors.New("server: admission queue full")
	ErrWaitTimeout = errors.New("server: admission wait expired")
	ErrTenantLimit = errors.New("server: tenant concurrency limit reached")
)

type waiter struct {
	weight int64
	tenant string
	ready  chan struct{} // closed on grant
	done   bool          // granted or abandoned (guarded by Limiter.mu)
}

// NewLimiter builds a limiter with the given total weight capacity,
// wait-queue bound, and per-tenant cap (0 disables tenant caps).
func NewLimiter(capacity int64, maxQueue int, tenantCap int64) *Limiter {
	if capacity <= 0 {
		capacity = 1
	}
	if tenantCap > capacity || tenantCap <= 0 {
		tenantCap = 0
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		capacity:  capacity,
		maxQueue:  maxQueue,
		tenantCap: tenantCap,
		byTenant:  map[string]int64{},
	}
}

// Acquire admits one request of the given weight for the given tenant,
// blocking in the wait queue until admitted, the context expires, or the
// queue is full. On success the returned release function MUST be called
// exactly once. Weights above capacity are clamped so the heaviest
// request class remains admissible (alone).
func (l *Limiter) Acquire(ctx context.Context, tenant string, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	if l.tenantCap > 0 && l.byTenant[tenant]+weight > l.tenantCap {
		l.mu.Unlock()
		return nil, ErrTenantLimit
	}
	// Enqueue, then promote: the promotion pass grants this waiter
	// immediately if nothing grantable sits ahead of it (the queue may
	// hold only tenant-blocked waiters, which do not bar admission).
	w := &waiter{weight: weight, tenant: tenant, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.promoteLocked()
	if w.done {
		l.mu.Unlock()
		return l.releaseFunc(tenant, weight), nil
	}
	if l.queued() > l.maxQueue {
		l.removeLocked(w)
		l.mu.Unlock()
		return nil, ErrQueueFull
	}
	l.mu.Unlock()

	select {
	case <-w.ready:
		return l.releaseFunc(tenant, weight), nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.done {
			// Lost the race: the grant landed while ctx fired. Honor it —
			// the caller still holds a valid slot and releases normally.
			l.mu.Unlock()
			return l.releaseFunc(tenant, weight), nil
		}
		w.done = true
		l.removeLocked(w)
		l.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, ErrWaitTimeout
		}
		return nil, ctx.Err()
	}
}

// TryAcquire is Acquire without waiting: it admits immediately or
// rejects with ErrQueueFull/ErrTenantLimit.
func (l *Limiter) TryAcquire(tenant string, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tenantCap > 0 && l.byTenant[tenant]+weight > l.tenantCap {
		return nil, ErrTenantLimit
	}
	w := &waiter{weight: weight, tenant: tenant, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.promoteLocked()
	if !w.done {
		l.removeLocked(w)
		return nil, ErrQueueFull
	}
	return l.releaseFunc(tenant, weight), nil
}

// grantLocked books the weight. Caller holds mu.
func (l *Limiter) grantLocked(tenant string, weight int64) {
	l.inUse += weight
	l.byTenant[tenant] += weight
}

// releaseFunc returns the idempotent release closure for one grant.
func (l *Limiter) releaseFunc(tenant string, weight int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inUse -= weight
			if v := l.byTenant[tenant] - weight; v > 0 {
				l.byTenant[tenant] = v
			} else {
				delete(l.byTenant, tenant)
			}
			l.promoteLocked()
			l.mu.Unlock()
		})
	}
}

// promoteLocked grants queued waiters that now fit, in FIFO order.
// A capacity-blocked waiter bars every waiter behind it (strict FIFO, so
// a stream of light requests cannot starve a heavy one at the head); a
// waiter blocked only by its tenant cap is skipped over. Caller holds mu.
func (l *Limiter) promoteLocked() {
	var kept []*waiter
	blocked := false
	for _, w := range l.queue {
		if w == nil || w.done {
			continue
		}
		if !blocked {
			fits := l.inUse+w.weight <= l.capacity
			tenantOK := l.tenantCap == 0 || l.byTenant[w.tenant]+w.weight <= l.tenantCap
			if fits && tenantOK {
				w.done = true
				l.grantLocked(w.tenant, w.weight)
				close(w.ready)
				continue
			}
			blocked = !fits
		}
		kept = append(kept, w)
	}
	l.queue = kept
}

// removeLocked drops an abandoned waiter from the queue. Caller holds mu.
func (l *Limiter) removeLocked(target *waiter) {
	for i, w := range l.queue {
		if w == target {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// queued counts live waiters. Caller holds mu.
func (l *Limiter) queued() int {
	n := 0
	for _, w := range l.queue {
		if w != nil && !w.done {
			n++
		}
	}
	return n
}

// Stats is a point-in-time admission snapshot.
type Stats struct {
	Capacity int64
	InUse    int64
	Queued   int
	Tenants  int
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Capacity: l.capacity, InUse: l.inUse, Queued: l.queued(), Tenants: len(l.byTenant)}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rdfterm"
)

// seedLargeModel bulk-loads n filler triples into model m.
func seedLargeModel(t testing.TB, s *Store, m string, n int) {
	t.Helper()
	const chunk = 10000
	for base := 0; base < n; base += chunk {
		end := base + chunk
		if end > n {
			end = n
		}
		batch := make([]BatchTriple, 0, end-base)
		for i := base; i < end; i++ {
			batch = append(batch, BatchTriple{
				Subject:   rdfterm.NewURI(fmt.Sprintf("http://x#s%d", i%512)),
				Predicate: rdfterm.NewURI(fmt.Sprintf("http://x#p%d", i%16)),
				Object:    rdfterm.NewURI(fmt.Sprintf("http://x#o%d", i)),
			})
		}
		if _, err := s.InsertBatch(m, batch); err != nil {
			t.Fatal(err)
		}
	}
}

// A cancelled context aborts a full-scan Find over a 100k-triple model
// promptly — and the read lock is released, so writers proceed.
func TestFindCtxCancelReleasesPromptly(t *testing.T) {
	s := newStoreWithModel(t, "big")
	seedLargeModel(t, s, "big", 100000)

	// Already-cancelled context: immediate error, no scanning.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.FindCtx(pre, "big", Pattern{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindCtx with cancelled ctx = %v", err)
	}

	// Cancel mid-scan: the scan must notice within 100ms.
	ctx, cancel2 := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.FindCtx(ctx, "big", Pattern{})
		done <- err
	}()
	<-started
	cancel2()
	cancelledAt := time.Now()
	select {
	case err := <-done:
		// The scan may legitimately have finished before the cancel won
		// the race; only a cancellation slower than 100ms is a failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("FindCtx returned unexpected error: %v", err)
		}
		if d := time.Since(cancelledAt); d > 100*time.Millisecond {
			t.Fatalf("FindCtx returned %v after cancellation (budget 100ms)", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("FindCtx did not return after cancellation")
	}

	// The read lock must be free: a write completes immediately.
	writeDone := make(chan error, 1)
	go func() {
		_, err := s.NewTripleS("big", "x:post", "x:p", "x:post", govAliases().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"}))
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("write blocked after cancelled Find: read lock leaked")
	}
}

func TestExportModelCtxCancel(t *testing.T) {
	s := newStoreWithModel(t, "m")
	seedLargeModel(t, s, "m", 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.ExportModelCtx(ctx, "m", discard{}, ExportOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExportModelCtx with cancelled ctx = %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
